//===- tests/serve_test.cpp - Distribution subsystem tests ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// src/serve end to end: the content-addressed store, the sharded
/// verified-module cache (eviction + single-flight), the framed
/// PUBLISH/FETCH protocol over pipe and socket transports (including
/// hostile framing), and the BatchCompiler integration. The whole file
/// also runs under ThreadSanitizer via the serve_tsan ctest entry.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/BatchCompiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"
#include "serve/CodeClient.h"
#include "serve/CodeServer.h"
#include "serve/ModuleCache.h"
#include "serve/ModuleStore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>

using namespace safetsa;

namespace {

std::vector<uint8_t> encodeProgram(const char *Name, const char *Source) {
  auto P = compileMJ(Name, Source);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  return encodeModule(*P->TSA);
}

std::string runUnit(const DecodedUnit &Unit) {
  Runtime RT(*Unit.Table);
  TSAInterpreter I(*Unit.Module, RT);
  ExecResult E = I.runMain();
  EXPECT_EQ(E.Err, RuntimeError::None) << runtimeErrorName(E.Err);
  return RT.getOutput();
}

/// One protocol session: a pipe pair with a dedicated thread running the
/// server side until the client hangs up.
struct Session {
  TransportPair Pair;
  std::thread ServerThread;

  explicit Session(CodeServer &Server) : Pair(makePipePair()) {
    ServerThread =
        std::thread([&Server, this] { Server.serveConnection(*Pair.Server); });
  }
  ~Session() {
    Pair.Client->closeSend();
    ServerThread.join();
  }
  Transport &clientEnd() { return *Pair.Client; }
};

//===----------------------------------------------------------------------===//
// Round-trip property (acceptance criterion)
//===----------------------------------------------------------------------===//

// For every corpus program: PUBLISH then FETCH returns byte-identical
// encoded modules, the fetched module fused-decodes, and interpreting it
// produces the same output as the locally compiled module.
TEST(Serve, RoundTripCorpus) {
  CodeServer Server;
  Session S(Server);
  CodeClient Client(S.clientEnd());

  for (const CorpusProgram &P : getCorpus()) {
    SCOPED_TRACE(P.Name);
    auto Local = compileMJ(P.Name, P.Source);
    ASSERT_TRUE(Local->ok()) << Local->renderDiagnostics();
    std::vector<uint8_t> Wire = encodeModule(*Local->TSA);

    Digest D;
    std::string Err;
    ASSERT_TRUE(Client.publish(ByteSpan(Wire), D, &Err)) << Err;
    EXPECT_EQ(D, digestOf(ByteSpan(Wire)));

    std::vector<uint8_t> Fetched;
    ASSERT_TRUE(Client.fetch(D, Fetched, &Err)) << Err;
    EXPECT_EQ(Fetched, Wire); // Byte-identical round trip.

    auto Unit = Client.fetchAndLoad(D, &Err);
    ASSERT_TRUE(Unit) << Err; // Fused decode+verify succeeded.

    // Same observable behaviour as the locally compiled module.
    Runtime LocalRT(*Local->Table);
    TSAInterpreter LocalI(*Local->TSA, LocalRT);
    ASSERT_EQ(LocalI.runMain().Err, RuntimeError::None);
    EXPECT_EQ(runUnit(*Unit), LocalRT.getOutput());
  }
}

TEST(Serve, PublishIsIdempotent) {
  CodeServer Server;
  std::vector<uint8_t> Wire = encodeProgram(
      "idem.mj", "class Main { static void main() { IO.printInt(7); } }");
  std::string Err;
  Digest D1 = Server.publish(ByteSpan(Wire), &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  Digest D2 = Server.publish(ByteSpan(Wire), &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  EXPECT_EQ(D1, D2);
  EXPECT_EQ(Server.getStore().size(), 1u);
  EXPECT_EQ(Server.getStore().getDuplicatePublishes(), 1u);
  // The duplicate publish hit the cached verification verdict: one
  // decode for two publishes.
  EXPECT_EQ(Server.stats().CacheDecodes, 1u);
}

TEST(Serve, FetchUnknownDigestIsNotFound) {
  CodeServer Server;
  Session S(Server);
  CodeClient Client(S.clientEnd());
  std::vector<uint8_t> Out;
  std::string Err;
  EXPECT_FALSE(Client.fetch(Digest{1, 2}, Out, &Err));
  EXPECT_NE(Err.find("not found"), std::string::npos) << Err;
  EXPECT_EQ(Server.stats().FetchNotFound, 1u);
}

// A module whose bytes fail fused decode+verify must be refused at
// PUBLISH: the store never serves unverifiable bytes.
TEST(Serve, PublishRejectsUnverifiableBytes) {
  std::vector<uint8_t> Wire = encodeProgram(
      "tamper.mj", "class Main { static void main() { IO.printInt(1); } }");
  // Find a mutation the decoder rejects (most are; scan to be sure).
  std::vector<uint8_t> Bad;
  for (size_t I = 0; I != Wire.size() && Bad.empty(); ++I) {
    std::vector<uint8_t> M = Wire;
    M[I] ^= 0x40;
    std::string DecErr;
    if (!decodeModule(ByteSpan(M), &DecErr, DecodeOptions{}))
      Bad = std::move(M);
  }
  ASSERT_FALSE(Bad.empty()) << "no rejectable mutation found";

  CodeServer Server;
  std::string Err;
  Digest D = Server.publish(ByteSpan(Bad), &Err);
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(Server.getStore().contains(D));
  EXPECT_EQ(Server.stats().VerifyFailures, 1u);
  // A later publish of the same digest retries (failures are not
  // cached as verdicts) and fails again.
  Err.clear();
  Server.publish(ByteSpan(Bad), &Err);
  EXPECT_FALSE(Err.empty());
  EXPECT_EQ(Server.stats().VerifyFailures, 2u);
}

// A server handing back bytes that do not hash to the requested digest
// is caught by the client (content addressing end to end).
TEST(Serve, ClientRejectsSubstitutedBytes) {
  TransportPair Pair = makePipePair();
  std::thread Liar([&] {
    Frame F;
    ASSERT_EQ(readFrame(*Pair.Server, F), FrameError::None);
    ASSERT_EQ(F.Type, MsgType::Fetch);
    const uint8_t Other[] = {1, 2, 3, 4};
    writeFrame(*Pair.Server, MsgType::FetchOk, ByteSpan(Other, 4));
  });
  CodeClient Client(*Pair.Client);
  std::string Err;
  auto Unit = Client.fetchAndLoad(Digest{42, 42}, &Err);
  EXPECT_EQ(Unit, nullptr);
  EXPECT_NE(Err.find("digest"), std::string::npos) << Err;
  Liar.join();
}

//===----------------------------------------------------------------------===//
// Transports
//===----------------------------------------------------------------------===//

void roundTripOver(TransportPair Pair) {
  if (!Pair.Client || !Pair.Server)
    GTEST_SKIP() << "transport unavailable in this sandbox";
  CodeServer Server;
  std::thread ServerThread(
      [&] { Server.serveConnection(*Pair.Server); });
  {
    CodeClient Client(*Pair.Client);
    std::vector<uint8_t> Wire = encodeProgram(
        "sock.mj",
        "class Main { static void main() { IO.printInt(123); } }");
    Digest D;
    std::string Err;
    ASSERT_TRUE(Client.publish(ByteSpan(Wire), D, &Err)) << Err;
    std::vector<uint8_t> Fetched;
    ASSERT_TRUE(Client.fetch(D, Fetched, &Err)) << Err;
    EXPECT_EQ(Fetched, Wire);
    ServeStats Stats;
    ASSERT_TRUE(Client.stats(Stats, &Err)) << Err;
    EXPECT_EQ(Stats.StoreModules, 1u);
    EXPECT_EQ(Stats.Fetches, 1u);
    Client.close();
  }
  ServerThread.join();
}

TEST(Serve, UnixSocketRoundTrip) { roundTripOver(makeSocketPair()); }

TEST(Serve, TcpLoopbackRoundTrip) { roundTripOver(makeLoopbackTcpPair()); }

//===----------------------------------------------------------------------===//
// Hostile framing
//===----------------------------------------------------------------------===//

TEST(Frame, DecodeTypedErrors) {
  Frame F;
  size_t Consumed = 0;
  // Clean empty buffer = session boundary.
  EXPECT_EQ(decodeFrame(ByteSpan(), F, &Consumed), FrameError::Closed);
  // Short header.
  const uint8_t Short[] = {1, 0, 0};
  EXPECT_EQ(decodeFrame(ByteSpan(Short, 3), F, &Consumed),
            FrameError::Truncated);
  // Oversized length prefix: rejected before any allocation.
  const uint8_t Huge[] = {0xff, 0xff, 0xff, 0xff,
                          static_cast<uint8_t>(MsgType::Publish)};
  EXPECT_EQ(decodeFrame(ByteSpan(Huge, 5), F, &Consumed),
            FrameError::Oversized);
  // Unknown type byte.
  const uint8_t BadType[] = {0, 0, 0, 0, 0x7f};
  EXPECT_EQ(decodeFrame(ByteSpan(BadType, 5), F, &Consumed),
            FrameError::BadType);
  // Payload shorter than the prefix claims.
  const uint8_t Cut[] = {4, 0, 0, 0, static_cast<uint8_t>(MsgType::Fetch),
                         9, 9};
  EXPECT_EQ(decodeFrame(ByteSpan(Cut, 7), F, &Consumed),
            FrameError::Truncated);
  // A well-formed frame still decodes.
  const uint8_t Good[] = {2, 0, 0, 0, static_cast<uint8_t>(MsgType::Stats),
                          7, 8};
  ASSERT_EQ(decodeFrame(ByteSpan(Good, 7), F, &Consumed), FrameError::None);
  EXPECT_EQ(Consumed, 7u);
  EXPECT_EQ(F.Type, MsgType::Stats);
  EXPECT_EQ(F.Payload, (std::vector<uint8_t>{7, 8}));
}

/// Feeds raw corrupt bytes to a live server connection and expects a
/// typed Error response followed by connection shutdown — never a crash,
/// never an allocation driven by the hostile length.
void expectServerRejects(const std::vector<uint8_t> &Raw,
                         FrameError Expected) {
  CodeServer Server;
  TransportPair Pair = makePipePair();
  std::thread ServerThread(
      [&] { Server.serveConnection(*Pair.Server); });
  ASSERT_TRUE(Pair.Client->writeAll(Raw.data(), Raw.size()));
  Pair.Client->closeSend();
  Frame F;
  FrameError E = readFrame(*Pair.Client, F);
  ASSERT_EQ(E, FrameError::None);
  EXPECT_EQ(F.Type, MsgType::Error);
  std::string Msg(F.Payload.begin(), F.Payload.end());
  EXPECT_EQ(Msg, frameErrorName(Expected));
  // Server closed after the error: next read is EOF.
  EXPECT_EQ(readFrame(*Pair.Client, F), FrameError::Closed);
  ServerThread.join();
}

TEST(Frame, ServerRejectsOversizedFrame) {
  // 4 GiB length prefix; payload never sent.
  expectServerRejects({0xff, 0xff, 0xff, 0xff, 0x01}, FrameError::Oversized);
}

TEST(Frame, ServerRejectsBadTypeByte) {
  expectServerRejects({0, 0, 0, 0, 0x6e}, FrameError::BadType);
}

TEST(Frame, ServerRejectsTruncatedPayload) {
  // Claims 100 payload bytes, delivers 3, then EOF.
  expectServerRejects({100, 0, 0, 0, 0x01, 1, 2, 3}, FrameError::Truncated);
}

TEST(Frame, ServerRejectsTruncatedHeader) {
  expectServerRejects({1, 0}, FrameError::Truncated);
}

TEST(Frame, ServerSurvivesErrorAndServesNextConnection) {
  CodeServer Server;
  {
    TransportPair Pair = makePipePair();
    std::thread T([&] { Server.serveConnection(*Pair.Server); });
    std::vector<uint8_t> Junk = {0xff, 0xff, 0xff, 0xff, 0x01};
    Pair.Client->writeAll(Junk.data(), Junk.size());
    Pair.Client->closeSend();
    T.join();
  }
  // The server object is unharmed; a fresh connection works.
  Session S(Server);
  CodeClient Client(S.clientEnd());
  ServeStats Stats;
  std::string Err;
  EXPECT_TRUE(Client.stats(Stats, &Err)) << Err;
}

//===----------------------------------------------------------------------===//
// Cache: eviction, single-flight, warm serving
//===----------------------------------------------------------------------===//

TEST(ModuleCacheTest, EvictsLruByBytes) {
  // One shard so the LRU order is globally observable.
  ModuleCache Cache(/*CapacityBytes=*/100, /*NumShards=*/1);
  auto DecodeStub = [](std::string *) {
    // Eviction is policy over charges; the decoded value is irrelevant,
    // so an empty unit keeps the test focused.
    return std::make_unique<DecodedUnit>();
  };
  auto Get = [&](uint64_t Key) {
    std::string Err;
    return Cache.get(Digest{Key, Key}, /*Charge=*/40, DecodeStub, &Err);
  };
  ASSERT_TRUE(Get(1)); // bytes=40
  ASSERT_TRUE(Get(2)); // bytes=80
  ASSERT_TRUE(Get(1)); // touch 1: LRU order now 1,2
  ASSERT_TRUE(Get(3)); // bytes=120 > 100: evicts 2 (LRU), keeps 1,3
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Evictions, 1u);
  EXPECT_EQ(S.Entries, 2u);
  EXPECT_EQ(S.Bytes, 80u);
  EXPECT_EQ(S.Decodes, 3u);
  // 1 and 3 are warm; 2 decodes again.
  ASSERT_TRUE(Get(1));
  ASSERT_TRUE(Get(3));
  EXPECT_EQ(Cache.stats().Decodes, 3u);
  ASSERT_TRUE(Get(2));
  EXPECT_EQ(Cache.stats().Decodes, 4u);
}

TEST(ModuleCacheTest, OversizedSingleEntryStillServes) {
  ModuleCache Cache(/*CapacityBytes=*/10, /*NumShards=*/1);
  std::string Err;
  auto Unit = Cache.get(
      Digest{9, 9}, /*Charge=*/1000,
      [](std::string *) { return std::make_unique<DecodedUnit>(); }, &Err);
  ASSERT_TRUE(Unit);
  EXPECT_EQ(Cache.stats().Entries, 1u);
  // Warm in spite of exceeding the budget alone.
  ASSERT_TRUE(Cache.get(
      Digest{9, 9}, 1000,
      [](std::string *) { return std::make_unique<DecodedUnit>(); }, &Err));
  EXPECT_EQ(Cache.stats().Decodes, 1u);
}

// The single-flight acceptance test: a concurrent FETCH storm of one
// digest decodes exactly once, counter-asserted. The decode holds until
// every thread has entered get(), so the coalescing window is forced
// open deterministically.
TEST(ModuleCacheTest, SingleFlightStormDecodesOnce) {
  constexpr unsigned kThreads = 8;
  ModuleCache Cache(/*CapacityBytes=*/1 << 20, /*NumShards=*/4);
  std::atomic<unsigned> Entered{0};
  const Digest D{7, 7};

  auto SlowDecode = [&](std::string *) {
    // Run by exactly one thread; wait for the whole storm to arrive.
    while (Entered.load() != kThreads)
      std::this_thread::yield();
    return std::make_unique<DecodedUnit>();
  };

  std::vector<std::thread> Threads;
  std::atomic<unsigned> Successes{0};
  for (unsigned I = 0; I != kThreads; ++I)
    Threads.emplace_back([&] {
      ++Entered;
      std::string Err;
      if (Cache.get(D, 64, SlowDecode, &Err))
        ++Successes;
    });
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Successes.load(), kThreads);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Decodes, 1u); // The storm decoded exactly once.
  EXPECT_EQ(S.Misses, 1u);
  EXPECT_EQ(S.Hits + S.Coalesced, kThreads - 1);
}

TEST(ModuleCacheTest, FailedDecodeIsNotCachedAndWaitersSeeError) {
  ModuleCache Cache(1 << 20, 2);
  const Digest D{3, 3};
  std::string Err;
  auto Fail = [](std::string *E) -> std::unique_ptr<DecodedUnit> {
    *E = "synthetic failure";
    return nullptr;
  };
  EXPECT_EQ(Cache.get(D, 8, Fail, &Err), nullptr);
  EXPECT_EQ(Err, "synthetic failure");
  EXPECT_EQ(Cache.stats().DecodeFailures, 1u);
  EXPECT_EQ(Cache.stats().Entries, 0u);
  // The digest is retried, not poisoned.
  auto Ok = Cache.get(
      D, 8, [](std::string *) { return std::make_unique<DecodedUnit>(); },
      &Err);
  EXPECT_TRUE(Ok);
  EXPECT_EQ(Cache.stats().Decodes, 2u);
}

// Mixed-digest storm under the pool: mostly exercises the shard locking
// under TSan via the serve_tsan entry.
TEST(ModuleCacheTest, ConcurrentMixedDigests) {
  constexpr unsigned kThreads = 8;
  ModuleCache Cache(/*CapacityBytes=*/512, /*NumShards=*/4);
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Failures{0};
  for (unsigned T = 0; T != kThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != 200; ++I) {
        uint64_t Key = (T + I) % 16;
        std::string Err;
        if (!Cache.get(
                Digest{Key, Key * 31}, 64,
                [](std::string *) { return std::make_unique<DecodedUnit>(); },
                &Err))
          ++Failures;
        if (I % 64 == 0 && T == 0)
          Cache.clear();
      }
    });
  for (auto &Thr : Threads)
    Thr.join();
  EXPECT_EQ(Failures.load(), 0u);
}

// Counter exactness under concurrency (acceptance criterion): the
// striped counters lose nothing, so with N threads each performing M
// gets, stats() must satisfy Hits + Misses + Coalesced == N*M exactly —
// every get() increments exactly one of the three — and each decode run
// was a counted miss.
TEST(ModuleCacheTest, CountersAreExactUnderConcurrency) {
  constexpr unsigned kThreads = 8, kItersPerThread = 300, kDigests = 12;
  // Capacity far above kDigests * charge: no eviction, so each distinct
  // digest decodes exactly once across the whole storm.
  ModuleCache Cache(/*CapacityBytes=*/1 << 20, /*NumShards=*/4);
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Failures{0};
  for (unsigned T = 0; T != kThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != kItersPerThread; ++I) {
        uint64_t Key = (T * 7 + I) % kDigests;
        std::string Err;
        if (!Cache.get(
                Digest{Key, Key * 131}, /*Charge=*/64,
                [](std::string *) { return std::make_unique<DecodedUnit>(); },
                &Err))
          ++Failures;
      }
    });
  for (auto &Thr : Threads)
    Thr.join();
  ASSERT_EQ(Failures.load(), 0u);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses + S.Coalesced,
            uint64_t(kThreads) * kItersPerThread);
  EXPECT_EQ(S.Misses, S.Decodes);
  EXPECT_EQ(S.Decodes, kDigests);
  EXPECT_EQ(S.DecodeFailures, 0u);
  EXPECT_EQ(S.Entries, kDigests);
}

// Lock-free hits racing CLOCK eviction: half the threads hammer a hot
// working set through the snapshot fast path while the other half cycle
// cold digests through a tiny budget, forcing continuous eviction and
// snapshot republication underneath the readers. Primarily a TSan proof
// (runs under the serve_tsan entry); the exactness invariant is asserted
// here too since eviction must not perturb it.
TEST(ModuleCacheTest, LockFreeHitsRaceEvictionStorm) {
  constexpr unsigned kReaders = 4, kChurners = 4, kIters = 400;
  // Budget fits the two hot entries plus very little else.
  ModuleCache Cache(/*CapacityBytes=*/256, /*NumShards=*/2);
  auto DecodeStub = [](std::string *) {
    return std::make_unique<DecodedUnit>();
  };
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Failures{0};
  for (unsigned T = 0; T != kReaders; ++T)
    Threads.emplace_back([&] {
      for (unsigned I = 0; I != kIters; ++I) {
        uint64_t Key = I % 2; // Hot pair: mostly snapshot hits.
        std::string Err;
        if (!Cache.get(Digest{Key, Key * 31}, 32, DecodeStub, &Err))
          ++Failures;
      }
    });
  for (unsigned T = 0; T != kChurners; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != kIters; ++I) {
        // Distinct cold keys (disjoint from the hot pair) overflow the
        // budget and keep the CLOCK hand sweeping.
        uint64_t Key = 100 + T * kIters + I;
        std::string Err;
        if (!Cache.get(Digest{Key, Key * 31}, 64, DecodeStub, &Err))
          ++Failures;
      }
    });
  for (auto &Thr : Threads)
    Thr.join();
  ASSERT_EQ(Failures.load(), 0u);
  CacheStats S = Cache.stats();
  EXPECT_EQ(S.Hits + S.Misses + S.Coalesced,
            uint64_t(kReaders + kChurners) * kIters);
  EXPECT_EQ(S.Misses, S.Decodes);
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(S.Bytes, 256u + 64u); // Oversize slack: one in-flight charge.
}

// Warm-cache serving through the real server: the second load of every
// corpus digest does no decoding at all (acceptance criterion).
TEST(Serve, WarmCacheServesWithoutRedecode) {
  CodeServer Server;
  std::vector<Digest> Digests;
  for (const CorpusProgram &P : getCorpus()) {
    std::string Err;
    Digests.push_back(
        Server.publish(ByteSpan(encodeProgram(P.Name, P.Source)), &Err));
    ASSERT_TRUE(Err.empty()) << Err;
  }
  uint64_t DecodesAfterPublish = Server.stats().CacheDecodes;
  EXPECT_EQ(DecodesAfterPublish, Digests.size());

  for (const Digest &D : Digests) {
    std::string Err;
    ASSERT_TRUE(Server.load(D, &Err)) << Err;
  }
  ServeStats S = Server.stats();
  EXPECT_EQ(S.CacheDecodes, DecodesAfterPublish); // Zero new decodes.
  EXPECT_GE(S.CacheHits, Digests.size());
}

// Preparation cost is amortized exactly like decoding: the first
// loadPrepared of a digest lowers the module once; every later one — from
// any thread — returns the same prepared unit with zero re-lowering.
TEST(Serve, WarmCacheServesPreparedWithoutRelowering) {
  CodeServer Server;
  std::vector<Digest> Digests;
  for (const CorpusProgram &P : getCorpus()) {
    std::string Err;
    Digests.push_back(
        Server.publish(ByteSpan(encodeProgram(P.Name, P.Source)), &Err));
    ASSERT_TRUE(Err.empty()) << Err;
  }
  EXPECT_EQ(Server.stats().CachePrepares, 0u); // Publish never lowers.

  std::vector<std::shared_ptr<const PreparedModule>> First;
  for (const Digest &D : Digests) {
    std::string Err;
    First.push_back(Server.loadPrepared(D, &Err));
    ASSERT_TRUE(First.back()) << Err;
  }
  EXPECT_EQ(Server.stats().CachePrepares, Digests.size());
  // Zero decodes either: the verdict cache was warm from publish.
  EXPECT_EQ(Server.stats().CacheDecodes, Digests.size());

  for (size_t I = 0; I != Digests.size(); ++I) {
    std::string Err;
    auto Again = Server.loadPrepared(Digests[I], &Err);
    ASSERT_TRUE(Again) << Err;
    EXPECT_EQ(Again.get(), First[I].get()) << "warm hit re-lowered";
  }
  EXPECT_EQ(Server.stats().CachePrepares, Digests.size());

  // A single-flight storm on one fresh server lowers exactly once.
  {
    CodeServer S2;
    std::string Err;
    Digest D = S2.publish(ByteSpan(encodeProgram(
                              "storm.mj", "class Main { static void main() { "
                                          "IO.printInt(1); } }")),
                          &Err);
    ASSERT_TRUE(Err.empty()) << Err;
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> Threads;
    std::atomic<unsigned> Failures{0};
    for (unsigned T = 0; T != kThreads; ++T)
      Threads.emplace_back([&] {
        std::string E;
        if (!S2.loadPrepared(D, &E))
          ++Failures;
      });
    for (auto &T : Threads)
      T.join();
    EXPECT_EQ(Failures.load(), 0u);
    EXPECT_EQ(S2.stats().CachePrepares, 1u);
  }

  // The prepared form a server hands out actually runs, and matches the
  // tree-walked decoded module it was lowered from.
  std::string Err;
  auto Unit = Server.load(Digests.front(), &Err);
  ASSERT_TRUE(Unit) << Err;
  Runtime RTX(*Unit->Table);
  TSAExec X(*First.front(), RTX);
  ASSERT_EQ(X.runMain().Err, RuntimeError::None);
  EXPECT_EQ(RTX.getOutput(), runUnit(*Unit));
}

// The prepared unit must stay valid even after the cache entry it was
// lowered from is evicted (the keep-alive deleter owns the decoded unit).
TEST(Serve, PreparedUnitSurvivesCacheEviction) {
  CodeServerOptions Opts;
  Opts.CacheBytes = 1; // Every admission evicts the previous entry.
  Opts.CacheShards = 1;
  CodeServer Server(Opts);
  std::string Err;
  Digest A = Server.publish(
      ByteSpan(encodeProgram(
          "evict_a.mj",
          "class Main { static void main() { IO.printInt(11); } }")),
      &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  auto PA = Server.loadPrepared(A, &Err);
  ASSERT_TRUE(PA) << Err;

  // Push A out of the cache.
  Digest B = Server.publish(
      ByteSpan(encodeProgram(
          "evict_b.mj",
          "class Main { static void main() { IO.printInt(22); } }")),
      &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  ASSERT_TRUE(Server.loadPrepared(B, &Err)) << Err;

  Runtime RT(*PA->Module->Table);
  TSAExec X(*PA, RT);
  ASSERT_EQ(X.runMain().Err, RuntimeError::None);
  EXPECT_EQ(RT.getOutput(), "11");

  // A cold loadPrepared of the evicted digest decodes and lowers anew.
  auto PA2 = Server.loadPrepared(A, &Err);
  ASSERT_TRUE(PA2) << Err;
  EXPECT_NE(PA2.get(), PA.get());
}

//===----------------------------------------------------------------------===//
// Execution tiers through the server: re-preparation + STATS counters
//===----------------------------------------------------------------------===//

// Every field — including the tier counters added for the profiling
// tier — survives the fixed-width LE wire encoding bit-exactly.
TEST(Serve, StatsWireFormatRoundTripsTierCounters) {
  ServeStats In;
  In.StoreModules = 1;
  In.StoreBytes = 2;
  In.DuplicatePublishes = 3;
  In.Publishes = 4;
  In.Fetches = 5;
  In.FetchNotFound = 6;
  In.VerifyFailures = 7;
  In.CacheHits = 8;
  In.CacheMisses = 9;
  In.CacheCoalesced = 10;
  In.CacheEvictions = 11;
  In.CacheDecodes = 12;
  In.CacheDecodeFailures = 13;
  In.CacheEntries = 14;
  In.CacheBytes = 15;
  In.CachePrepares = 16;
  In.CacheReprepares = 0x1122334455667788ull;
  In.CacheICHits = 17;
  In.CacheICMisses = 18;
  In.GcCycles = 19;
  In.GcCellsReclaimed = 20;
  In.GcPauseNs = 0x8877665544332211ull;
  In.CacheInlinedSites = 21;
  In.CacheInlineGuardMisses = 0x0102030405060708ull;

  std::vector<uint8_t> Bytes = encodeStats(In);
  EXPECT_EQ(Bytes.size(), kServeStatsFields * 8);
  ServeStats Out;
  ASSERT_TRUE(decodeStats(ByteSpan(Bytes), Out));
  EXPECT_EQ(Out.CachePrepares, 16u);
  EXPECT_EQ(Out.CacheReprepares, 0x1122334455667788ull);
  EXPECT_EQ(Out.CacheICHits, 17u);
  EXPECT_EQ(Out.CacheICMisses, 18u);
  EXPECT_EQ(Out.GcCycles, 19u);
  EXPECT_EQ(Out.GcCellsReclaimed, 20u);
  EXPECT_EQ(Out.GcPauseNs, 0x8877665544332211ull);
  EXPECT_EQ(Out.CacheInlinedSites, 21u);
  EXPECT_EQ(Out.CacheInlineGuardMisses, 0x0102030405060708ull);
  EXPECT_EQ(Out.StoreModules, 1u);
  EXPECT_EQ(Out.CacheBytes, 15u);

  // Frames from older protocol revisions (16 fields pre-tier, 19 fields
  // pre-GC, 22 fields pre-inlining) are rejected, not misparsed.
  Bytes.resize(22 * 8);
  EXPECT_FALSE(decodeStats(ByteSpan(Bytes), Out));
  Bytes.resize(19 * 8);
  EXPECT_FALSE(decodeStats(ByteSpan(Bytes), Out));
  Bytes.resize(16 * 8);
  EXPECT_FALSE(decodeStats(ByteSpan(Bytes), Out));
}

const char *kVirtualSrc =
    "class A { int f() { return 1; } } "
    "class B extends A { int f() { return 2; } } "
    "class Main { "
    "static int go(A a) { return a.f(); } "
    "static void main() { A x = new A(); int s = 0; int i = 0; "
    "while (i < 10) { s = s + go(x); i = i + 1; } IO.printInt(s); } }";

// A module that crosses the hot threshold is re-quickened exactly once,
// even under a concurrent loadPrepared storm: one thread runs the
// re-preparation while rivals are served the profiling tier without
// blocking. Afterwards everyone gets the cached tier-1 form, and the
// STATS reply carries the reprepare + inline-cache counters.
TEST(Serve, HotModuleIsRequickenedOnceUnderStorm) {
  CodeServerOptions Opts;
  Opts.HotThreshold = 1;
  // Inlining off so the hot site stays a tallying DispatchMono: this
  // test pins the IC counters on the wire (the inlined shape is covered
  // by InlinedTierCountersFlowThroughStats below).
  Opts.NoInlining = true;
  CodeServer Server(Opts);
  std::string Err;
  Digest D =
      Server.publish(ByteSpan(encodeProgram("hot.mj", kVirtualSrc)), &Err);
  ASSERT_TRUE(Err.empty()) << Err;

  auto Unit = Server.load(D, &Err);
  ASSERT_TRUE(Unit) << Err;

  // Cold load serves the profiling tier.
  auto T0 = Server.loadPrepared(D, &Err);
  ASSERT_TRUE(T0) << Err;
  EXPECT_EQ(T0->Tier, 0u);
  EXPECT_EQ(Server.stats().CacheReprepares, 0u);

  // One run crosses HotThreshold=1 and seeds the receiver profile.
  {
    Runtime RT(*Unit->Table);
    TSAExec X(*T0, RT);
    ASSERT_EQ(X.runMain().Err, RuntimeError::None);
    EXPECT_EQ(RT.getOutput(), "10");
  }

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Failures{0};
  for (unsigned T = 0; T != kThreads; ++T)
    Threads.emplace_back([&] {
      std::string E;
      auto P = Server.loadPrepared(D, &E);
      // Rivals may legitimately see tier 0 (non-blocking single-flight)
      // but never a failure.
      if (!P || P->Tier > 1)
        ++Failures;
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Server.stats().CacheReprepares, 1u);

  // The storm has settled: tier 1 is cached and served to everyone.
  auto T1 = Server.loadPrepared(D, &Err);
  ASSERT_TRUE(T1) << Err;
  EXPECT_EQ(T1->Tier, 1u);
  EXPECT_NE(T1.get(), T0.get());
  EXPECT_EQ(Server.loadPrepared(D, &Err).get(), T1.get());
  EXPECT_EQ(Server.stats().CacheReprepares, 1u);

  // A caller that pins the profiling tier still gets it.
  auto Pinned = Server.loadPrepared(D, /*MaxTier=*/0, &Err);
  ASSERT_TRUE(Pinned) << Err;
  EXPECT_EQ(Pinned->Tier, 0u);
  EXPECT_EQ(Pinned.get(), T0.get());

  // Running the re-quickened form hits its inline caches; stats() sums
  // the tallies over resident tier-1 modules.
  {
    Runtime RT(*Unit->Table);
    TSAExec X(*T1, RT);
    ASSERT_EQ(X.runMain().Err, RuntimeError::None);
    EXPECT_EQ(RT.getOutput(), "10");
  }
  ServeStats S = Server.stats();
  EXPECT_GE(S.CacheICHits, 10u);
  EXPECT_EQ(S.CacheICMisses, 0u);

  // And over the wire: the STATS frame carries the tier counters.
  Session Sess(Server);
  CodeClient Client(Sess.clientEnd());
  ServeStats WireStats;
  ASSERT_TRUE(Client.stats(WireStats, &Err)) << Err;
  EXPECT_EQ(WireStats.CacheReprepares, 1u);
  EXPECT_EQ(WireStats.CacheICHits, S.CacheICHits);
  EXPECT_EQ(WireStats.CacheICMisses, 0u);
}

// Default options speculatively inline the hot monomorphic site at
// re-preparation: the spliced-site and guard-miss tallies must flow from
// the resident tier-1 module through stats() and the STATS frame (the
// two fields appended for DESIGN.md §14).
TEST(Serve, InlinedTierCountersFlowThroughStats) {
  CodeServerOptions Opts;
  Opts.HotThreshold = 1;
  CodeServer Server(Opts);
  std::string Err;
  Digest D =
      Server.publish(ByteSpan(encodeProgram("inl.mj", kVirtualSrc)), &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  auto Unit = Server.load(D, &Err);
  ASSERT_TRUE(Unit) << Err;

  auto T0 = Server.loadPrepared(D, &Err);
  ASSERT_TRUE(T0) << Err;
  {
    Runtime RT(*Unit->Table);
    TSAExec X(*T0, RT);
    ASSERT_EQ(X.runMain().Err, RuntimeError::None);
  }
  auto T1 = Server.loadPrepared(D, &Err);
  ASSERT_TRUE(T1) << Err;
  ASSERT_EQ(T1->Tier, 1u);

  // The mono site was spliced; its all-A workload never misses the
  // receiver guard, and splice hits do not tally as IC hits.
  {
    Runtime RT(*Unit->Table);
    TSAExec X(*T1, RT);
    ASSERT_EQ(X.runMain().Err, RuntimeError::None);
    EXPECT_EQ(RT.getOutput(), "10");
  }
  ServeStats S = Server.stats();
  EXPECT_GE(S.CacheInlinedSites, 1u);
  EXPECT_EQ(S.CacheInlineGuardMisses, 0u);
  EXPECT_EQ(S.CacheICHits, 0u);

  Session Sess(Server);
  CodeClient Client(Sess.clientEnd());
  ServeStats WireStats;
  ASSERT_TRUE(Client.stats(WireStats, &Err)) << Err;
  EXPECT_EQ(WireStats.CacheInlinedSites, S.CacheInlinedSites);
  EXPECT_EQ(WireStats.CacheInlineGuardMisses, 0u);

  // The per-server kill switch flows through the reprepare hook: a
  // NoInlining server re-quickens the same module with zero splices.
  CodeServerOptions OffOpts;
  OffOpts.HotThreshold = 1;
  OffOpts.NoInlining = true;
  CodeServer Off(OffOpts);
  Digest D2 =
      Off.publish(ByteSpan(encodeProgram("inloff.mj", kVirtualSrc)), &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  auto U2 = Off.load(D2, &Err);
  ASSERT_TRUE(U2) << Err;
  auto P0 = Off.loadPrepared(D2, &Err);
  ASSERT_TRUE(P0) << Err;
  {
    Runtime RT(*U2->Table);
    TSAExec X(*P0, RT);
    ASSERT_EQ(X.runMain().Err, RuntimeError::None);
  }
  auto P1 = Off.loadPrepared(D2, &Err);
  ASSERT_TRUE(P1) << Err;
  ASSERT_EQ(P1->Tier, 1u);
  EXPECT_EQ(Off.stats().CacheInlinedSites, 0u);
}

// A server capped at MaxExecTier=0 never re-quickens, no matter how hot
// the module runs.
TEST(Serve, ServerTierCapPinsProfilingTier) {
  CodeServerOptions Opts;
  Opts.MaxExecTier = 0;
  Opts.HotThreshold = 1;
  CodeServer Server(Opts);
  std::string Err;
  Digest D =
      Server.publish(ByteSpan(encodeProgram("cap.mj", kVirtualSrc)), &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  auto Unit = Server.load(D, &Err);
  ASSERT_TRUE(Unit) << Err;
  auto T0 = Server.loadPrepared(D, &Err);
  ASSERT_TRUE(T0) << Err;
  {
    Runtime RT(*Unit->Table);
    TSAExec X(*T0, RT);
    ASSERT_EQ(X.runMain().Err, RuntimeError::None);
  }
  auto Again = Server.loadPrepared(D, &Err);
  ASSERT_TRUE(Again) << Err;
  EXPECT_EQ(Again->Tier, 0u);
  EXPECT_EQ(Again.get(), T0.get());
  EXPECT_EQ(Server.stats().CacheReprepares, 0u);
}

//===----------------------------------------------------------------------===//
// Store persistence
//===----------------------------------------------------------------------===//

TEST(ModuleStoreTest, DirectoryPersistenceRoundTrip) {
  std::string Dir = ::testing::TempDir() + "safetsa_store_test";
  std::filesystem::remove_all(Dir);
  std::vector<uint8_t> Wire = encodeProgram(
      "persist.mj", "class Main { static void main() { IO.printInt(9); } }");
  Digest D;
  {
    ModuleStore Store(Dir);
    D = Store.publish(ByteSpan(Wire));
    // Laid out as <dir>/<hh>/<rest>.stsa.
    EXPECT_TRUE(std::filesystem::exists(
        std::filesystem::path(Dir) / ModuleStore::relativePath(D)));
  }
  // A fresh store over the same directory re-serves the exact bytes.
  ModuleStore Reopened(Dir);
  EXPECT_EQ(Reopened.size(), 1u);
  auto Fetched = Reopened.fetch(D);
  ASSERT_TRUE(Fetched);
  EXPECT_EQ(*Fetched, Wire);
  std::filesystem::remove_all(Dir);
}

TEST(ModuleStoreTest, ReopenedStoreKeysByContentNotFileName) {
  std::string Dir = ::testing::TempDir() + "safetsa_store_rename";
  std::filesystem::remove_all(Dir);
  std::vector<uint8_t> Wire = encodeProgram(
      "rekey.mj", "class Main { static void main() { IO.printInt(2); } }");
  Digest Real;
  {
    ModuleStore Store(Dir);
    Real = Store.publish(ByteSpan(Wire));
  }
  // An attacker renames the file to claim a different digest.
  Digest Claimed{0xdead, 0xbeef};
  std::filesystem::path From =
      std::filesystem::path(Dir) / ModuleStore::relativePath(Real);
  std::filesystem::path To =
      std::filesystem::path(Dir) / ModuleStore::relativePath(Claimed);
  std::filesystem::create_directories(To.parent_path());
  std::filesystem::rename(From, To);

  ModuleStore Reopened(Dir);
  // The claimed name is not honoured; the content digest is.
  EXPECT_FALSE(Reopened.contains(Claimed));
  auto Fetched = Reopened.fetch(Real);
  ASSERT_TRUE(Fetched);
  EXPECT_EQ(*Fetched, Wire);
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// BatchCompiler integration
//===----------------------------------------------------------------------===//

TEST(Serve, BatchPublishAfterEncodeAndCachedLoad) {
  CodeServer Server;
  BatchOptions Opts;
  Opts.Threads = 4;
  Opts.PublishTo = &Server;
  Opts.PrepareExec = true;
  BatchCompiler BC(Opts);

  std::vector<BatchJob> Jobs;
  for (const CorpusProgram &P : getCorpus())
    Jobs.push_back({P.Name, P.Source});
  std::vector<BatchResult> Results = BC.run(Jobs);

  std::vector<Digest> Digests;
  for (const BatchResult &R : Results) {
    ASSERT_TRUE(R.ok()) << R.Name << ": " << R.Error;
    ASSERT_TRUE(R.Published) << R.Name;
    EXPECT_EQ(R.Dig, digestOf(ByteSpan(R.Wire)));
    EXPECT_TRUE(Server.getStore().contains(R.Dig));
    Digests.push_back(R.Dig);
  }
  EXPECT_EQ(Server.getStore().size(), Jobs.size());
  uint64_t DecodesAfterPublish = Server.stats().CacheDecodes;

  // Duplicate every digest: single-flight + warm cache mean the whole
  // batch is served with no additional decodes.
  std::vector<Digest> Doubled = Digests;
  Doubled.insert(Doubled.end(), Digests.begin(), Digests.end());
  std::vector<BatchServeLoadResult> Loads = BC.loadCached(Doubled, Server);
  ASSERT_EQ(Loads.size(), Doubled.size());
  for (size_t I = 0; I != Loads.size(); ++I) {
    ASSERT_TRUE(Loads[I].ok()) << Loads[I].Error;
    ASSERT_TRUE(Loads[I].Unit);
    // Duplicates share the identical decoded module AND prepared form.
    EXPECT_EQ(Loads[I].Unit.get(),
              Loads[I % Digests.size()].Unit.get());
    ASSERT_TRUE(Loads[I].Prepared);
    EXPECT_EQ(Loads[I].Prepared.get(),
              Loads[I % Digests.size()].Prepared.get());
    EXPECT_EQ(Loads[I].Prepared->Module, Loads[I].Unit->Module.get());
  }
  EXPECT_EQ(Server.stats().CacheDecodes, DecodesAfterPublish);
  // One lowering per distinct digest, despite duplicates racing across
  // four workers (single-flight on the prepare path too).
  EXPECT_EQ(Server.stats().CachePrepares, Digests.size());

  // The decoded modules really are the published programs.
  std::string Err;
  auto Unit = Server.load(Digests.front(), &Err);
  ASSERT_TRUE(Unit) << Err;
  auto Local = compileMJ(Jobs.front().Name, Jobs.front().Source);
  Runtime RT(*Local->Table);
  TSAInterpreter I(*Local->TSA, RT);
  ASSERT_EQ(I.runMain().Err, RuntimeError::None);
  EXPECT_EQ(runUnit(*Unit), RT.getOutput());
}

// Parallel sessions against one server: protocol + store + cache under
// real concurrency (the serve_tsan entry races this file under TSan).
TEST(Serve, ParallelClientSessions) {
  CodeServer Server(CodeServerOptions{/*CacheBytes=*/1u << 20,
                                      /*CacheShards=*/4, /*Threads=*/4,
                                      /*VerifyOnPublish=*/true,
                                      /*StoreDir=*/""});
  std::vector<uint8_t> Wire = encodeProgram(
      "par.mj", "class Main { static void main() { IO.printInt(5); } }");
  const Digest D = digestOf(ByteSpan(Wire));

  constexpr unsigned kClients = 6;
  std::vector<TransportPair> Pairs;
  for (unsigned I = 0; I != kClients; ++I) {
    Pairs.push_back(makePipePair());
    Server.attach(std::move(Pairs.back().Server));
  }
  std::vector<std::thread> Clients;
  std::atomic<unsigned> Failures{0};
  for (unsigned I = 0; I != kClients; ++I)
    Clients.emplace_back([&, I] {
      CodeClient Client(*Pairs[I].Client);
      for (unsigned Round = 0; Round != 20; ++Round) {
        Digest Out;
        std::string Err;
        std::vector<uint8_t> Fetched;
        if (!Client.publish(ByteSpan(Wire), Out, &Err) || Out != D ||
            !Client.fetch(D, Fetched, &Err) || Fetched != Wire)
          ++Failures;
      }
      Client.close();
    });
  for (auto &C : Clients)
    C.join();
  Server.wait();
  EXPECT_EQ(Failures.load(), 0u);
  EXPECT_EQ(Server.getStore().size(), 1u);
  // One decode total: every publish after the first hit the verdict
  // cache, across all sessions.
  EXPECT_EQ(Server.stats().CacheDecodes, 1u);
}

} // namespace
