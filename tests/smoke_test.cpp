//===- tests/smoke_test.cpp - End-to-end pipeline smoke test --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "tsa/Printer.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

/// Compiles, verifies, runs, and returns the captured IO output.
std::string runProgram(const std::string &Source) {
  auto P = compileMJ("test.mj", Source);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  if (!P->ok())
    return "<compile error>";
  TSAVerifier V(*P->TSA);
  bool Verified = V.verify();
  EXPECT_TRUE(Verified);
  if (!Verified) {
    for (const std::string &E : V.getErrors())
      ADD_FAILURE() << E;
    return "<verify error>";
  }
  Runtime RT(*P->Table);
  TSAInterpreter Interp(*P->TSA, RT);
  ExecResult R = Interp.runMain();
  EXPECT_TRUE(R.ok()) << runtimeErrorName(R.Err);
  return RT.getOutput();
}

TEST(Smoke, HelloArithmetic) {
  EXPECT_EQ(runProgram(R"(
    class Main {
      static void main() {
        int x = 6 * 7;
        IO.printInt(x);
        IO.println();
      }
    }
  )"),
            "42\n");
}

TEST(Smoke, LoopAndConditionals) {
  EXPECT_EQ(runProgram(R"(
    class Main {
      static void main() {
        int sum = 0;
        for (int i = 1; i <= 10; i++) {
          if (i % 2 == 0) { sum = sum + i; } else { sum = sum + 1; }
        }
        IO.printInt(sum);
      }
    }
  )"),
            "35");
}

TEST(Smoke, ObjectsAndDispatch) {
  EXPECT_EQ(runProgram(R"(
    class Shape {
      int area() { return 0; }
    }
    class Square extends Shape {
      int side;
      Square(int s) { side = s; }
      int area() { return side * side; }
    }
    class Main {
      static void main() {
        Shape s = new Square(5);
        IO.printInt(s.area());
      }
    }
  )"),
            "25");
}

TEST(Smoke, ArraysAndWhile) {
  EXPECT_EQ(runProgram(R"(
    class Main {
      static void main() {
        int[] a = new int[5];
        int i = 0;
        while (i < a.length) { a[i] = i * i; i = i + 1; }
        int sum = 0;
        i = 0;
        while (i < a.length) { sum = sum + a[i]; i = i + 1; }
        IO.printInt(sum);
      }
    }
  )"),
            "30");
}

TEST(Smoke, ShortCircuitAndStrings) {
  EXPECT_EQ(runProgram(R"(
    class Main {
      static boolean boom() { IO.printChar('!'); return true; }
      static void main() {
        boolean b = false && boom();
        IO.printBool(b);
        boolean c = true || boom();
        IO.printBool(c);
        IO.printStr(" done");
      }
    }
  )"),
            "falsetrue done");
}

} // namespace
