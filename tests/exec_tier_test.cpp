//===- tests/exec_tier_test.cpp - Two-tier execution tests ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-guided execution tier (DESIGN.md §11), proved four ways:
///
///  1. Differential parity: tier-1 streams (inline caches, closed-world
///     devirtualization, superinstruction fusion) behave identically to
///     tier 0 and to the definitional tree-walker on the full corpus,
///     including trap points and try/catch — with fusion on, off, and
///     with inline caches masked.
///  2. Deterministic replay: profile + re-preparation is a pure function
///     — two independent profile/reprepare cycles over the same workload
///     yield byte-identical tier-1 streams (unit pointers compared
///     through their stable indices).
///  3. The IC state machine: profiled-monomorphic sites become guarded
///     direct calls (and count hits), guard misses fall back to the
///     vtable (and count misses), 2..4 receiver classes form a bounded
///     PIC, and overflow demotes the site back to the plain vtable path.
///  4. Structure: fusion preserves stream length (shadow slots), so no
///     branch target or handler index ever needs re-patching.
///
/// Registered under `ctest -L exec` with _asan/_tsan variants.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <unordered_map>

using namespace safetsa;

namespace {

struct Outcome {
  RuntimeError Err = RuntimeError::None;
  std::string Output;
};

Outcome runTreeWalk(const TSAModule &M, ClassTable &Table) {
  Runtime RT(Table);
  TSAInterpreter I(M, RT);
  ExecResult R = I.runMain();
  return {R.Err, RT.getOutput()};
}

Outcome runModule(const PreparedModule &PM, ClassTable &Table) {
  Runtime RT(Table);
  TSAExec X(PM, RT);
  ExecResult R = X.runMain();
  return {R.Err, RT.getOutput()};
}

/// One profile/re-quicken cycle with an effective HotThreshold of 1: a
/// fresh tier-0 preparation, one profiling run of main, then tier 1 from
/// the gathered profile.
std::unique_ptr<PreparedModule> tier1AfterOneRun(const TSAModule &M,
                                                 ClassTable &Table,
                                                 PrepareOptions Opts = {}) {
  auto T0 = prepareModule(M);
  EXPECT_TRUE(T0);
  if (!T0)
    return nullptr;
  runModule(*T0, Table);
  return reprepareModule(*T0, Opts);
}

/// Tier parity on one module: tree-walk == tier 0 == tier 1 (fusion on),
/// == tier 1 (fusion off) == tier 1 (ICs masked). Trap kind and full
/// printed output must all agree.
void expectTierParity(const TSAModule &M, ClassTable &Table,
                      const char *Label) {
  Outcome Ref = runTreeWalk(M, Table);
  auto T0 = prepareModule(M);
  ASSERT_TRUE(T0) << Label;
  Outcome O0 = runModule(*T0, Table);
  EXPECT_EQ(O0.Err, Ref.Err) << Label << ": tier-0 trap diverged";
  EXPECT_EQ(O0.Output, Ref.Output) << Label << ": tier-0 output diverged";

  struct Variant {
    const char *Name;
    PrepareOptions Opts;
  };
  PrepareOptions NoFuse;
  NoFuse.NoFusion = true;
  PrepareOptions NoIC;
  NoIC.NoInlineCaches = true;
  const Variant Variants[] = {
      {"tier-1", {}}, {"tier-1/nofusion", NoFuse}, {"tier-1/noic", NoIC}};
  for (const Variant &V : Variants) {
    auto T1 = reprepareModule(*T0, V.Opts);
    ASSERT_TRUE(T1) << Label << " " << V.Name;
    EXPECT_EQ(T1->Tier, 1u);
    Outcome O1 = runModule(*T1, Table);
    EXPECT_EQ(O1.Err, Ref.Err)
        << Label << " " << V.Name << ": trapped " << runtimeErrorName(O1.Err)
        << ", oracle " << runtimeErrorName(Ref.Err);
    EXPECT_EQ(O1.Output, Ref.Output)
        << Label << " " << V.Name << ": output diverged";
  }
}

void expectSourceTierParity(const std::string &Src) {
  auto C = compileMJ("tier.mj", Src);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  expectTierParity(*C->TSA, *C->Table, "tier");
}

/// Structural identity of a prepared module, with raw ExecUnit pointers
/// (which differ across independent preparations) rendered through their
/// stable unit indices. Two byte-identical tier-1 streams produce equal
/// fingerprints and vice versa; symbol/type pointers are stable because
/// both preparations come from one compile.
std::string fingerprint(const PreparedModule &PM) {
  std::unordered_map<const void *, uint32_t> UnitIdx;
  for (const auto &U : PM.Units)
    UnitIdx[U.get()] = U->Index;
  std::string S;
  char Buf[192];
  for (const auto &U : PM.Units) {
    std::snprintf(Buf, sizeof(Buf), "unit %u slots=%u args=%u\n", U->Index,
                  U->NumSlots, U->NumArgs);
    S += Buf;
    for (const ExecInst &In : U->Code) {
      auto It = UnitIdx.find(In.P);
      if (It != UnitIdx.end())
        std::snprintf(Buf, sizeof(Buf),
                      " %s a%u b%u c%u d%u x%d h%d s%d u%u\n",
                      xopName(In.Op), In.A, In.B, In.C, In.Dst, In.X,
                      In.Handler, In.S, It->second);
      else
        std::snprintf(Buf, sizeof(Buf),
                      " %s a%u b%u c%u d%u x%d h%d s%d p%p\n",
                      xopName(In.Op), In.A, In.B, In.C, In.Dst, In.X,
                      In.Handler, In.S, In.P);
      S += Buf;
    }
    for (const ICEntry &E : U->ICs) {
      std::snprintf(Buf, sizeof(Buf), " ic ways=%u m%p", E.Ways,
                    static_cast<const void *>(E.Method));
      S += Buf;
      for (unsigned W = 0; W != E.Ways; ++W) {
        std::snprintf(Buf, sizeof(Buf), " %s->u%u", E.Classes[W]->Name.c_str(),
                      UnitIdx.at(E.Targets[W]));
        S += Buf;
      }
      S += '\n';
    }
  }
  return S;
}

const MethodSymbol *findMethod(const ClassTable &Table, const char *Class,
                               const char *Name) {
  for (const auto &C : Table.getClasses())
    if (C->Name == Class)
      for (const auto &M : C->Methods)
        if (M->Name == Name)
          return M.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Corpus differential: every tier agrees with the oracle everywhere.
//===----------------------------------------------------------------------===//

class TierCorpusTest : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(TierCorpusTest, AllTiersMatchTreeWalk) {
  expectSourceTierParity(GetParam().Source);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, TierCorpusTest, ::testing::ValuesIn(getCorpus()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Trap points and try/catch at tier 1.
//===----------------------------------------------------------------------===//

TEST(TierTraps, NullPointerAcrossTiers) {
  expectSourceTierParity(
      "class C { int x; } class Main { static void main() { "
      "IO.printInt(3); C c = null; IO.printInt(c.x); } }");
}

TEST(TierTraps, IndexOutOfBoundsInLoopKeepsPartialOutput) {
  // The a[i] below fuses to IdxGetElt at tier 1; the trap point and the
  // output printed before it must survive fusion.
  expectSourceTierParity(
      "class Main { static void main() { int[] a = new int[4]; "
      "int i = 0; while (i < 10) { IO.printInt(a[i]); i = i + 1; } } }");
}

TEST(TierTraps, CalleeTrapUnwindsThroughVirtualCall) {
  expectSourceTierParity(
      "class A { int f(int[] a, int i) { return a[i]; } } "
      "class B extends A { int f(int[] a, int i) { return a[i] + 1; } } "
      "class Main { static void main() { A x = new B(); "
      "int[] a = new int[2]; IO.printInt(x.f(a, 1)); "
      "IO.printInt(x.f(a, 5)); } }");
}

TEST(TierTryCatch, CatchAcrossTiers) {
  expectSourceTierParity(
      "class Main { static void main() { int z = 0; int r; "
      "try { r = 10 / z; } catch { r = -1; } IO.printInt(r); } }");
}

TEST(TierTryCatch, CaughtIndexTrapInsideFusedAccess) {
  expectSourceTierParity(
      "class Main { static void main() { int[] a = new int[3]; int s = 0; "
      "int i = 0; while (i < 6) { try { s = s + a[i]; } "
      "catch { s = s + 100; } i = i + 1; } IO.printInt(s); } }");
}

TEST(TierTryCatch, CaughtTrapInsideHotVirtualCallee) {
  expectSourceTierParity(
      "class A { int f(int z) { return 10 / z; } } "
      "class B extends A { int f(int z) { return 20 / z; } } "
      "class Main { static void main() { A x = new B(); int s = 0; "
      "int i = 0 - 2; while (i < 3) { try { s = s + x.f(i); } "
      "catch { s = s + 1000; } i = i + 1; } IO.printInt(s); } }");
}

//===----------------------------------------------------------------------===//
// Deterministic replay: profile -> reprepare is a pure function.
//===----------------------------------------------------------------------===//

void expectDeterministicReplay(const std::string &Src) {
  auto C = compileMJ("replay.mj", Src);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  // Two fully independent cycles over the same workload (effective
  // HotThreshold = 1: one profiling run each).
  auto A = tier1AfterOneRun(*C->TSA, *C->Table);
  auto B = tier1AfterOneRun(*C->TSA, *C->Table);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(fingerprint(*A), fingerprint(*B))
      << "tier-1 streams diverged across identical profile cycles";
  // And the replayed tier-1 module still matches tier 0 / the oracle.
  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);
  Outcome O1 = runModule(*A, *C->Table);
  EXPECT_EQ(O1.Err, Ref.Err);
  EXPECT_EQ(O1.Output, Ref.Output);
}

TEST(TierReplay, CorpusPrograms) {
  for (const CorpusProgram &P : getCorpus()) {
    SCOPED_TRACE(P.Name);
    expectDeterministicReplay(P.Source);
  }
}

TEST(TierReplay, TrapProgram) {
  expectDeterministicReplay(
      "class Main { static void main() { int[] a = new int[3]; "
      "IO.printInt(a.length); IO.printInt(a[7]); } }");
}

TEST(TierReplay, TryCatchProgram) {
  expectDeterministicReplay(
      "class Main { static void main() { int z = 0; int r = 0; "
      "try { try { r = 10 / z; } catch { r = 1; } "
      "r = r + 10 / z; } catch { r = r + 10; } IO.printInt(r); } }");
}

TEST(TierReplay, PolymorphicProgram) {
  expectDeterministicReplay(
      "class A { int f() { return 1; } } "
      "class B extends A { int f() { return 2; } } "
      "class C extends A { int f() { return 3; } } "
      "class Main { static void main() { int s = 0; int i = 0; "
      "while (i < 9) { A x; if (i % 3 == 0) { x = new A(); } else { "
      "if (i % 3 == 1) { x = new B(); } else { x = new C(); } } "
      "s = s + x.f(); i = i + 1; } IO.printInt(s); } }");
}

//===----------------------------------------------------------------------===//
// The IC state machine: mono -> poly -> megamorphic.
//===----------------------------------------------------------------------===//

/// Two classes overriding f (so closed-world devirt cannot fire), but a
/// profile that only ever saw A: the site becomes DispatchMono.
const char *kMonoSrc =
    "class A { int f() { return 1; } } "
    "class B extends A { int f() { return 2; } } "
    "class Main { "
    "static int go(A a) { return a.f(); } "
    "static void main() { A x = new A(); int s = 0; int i = 0; "
    "while (i < 10) { s = s + go(x); i = i + 1; } IO.printInt(s); } }";

TEST(TierIC, MonomorphicSiteGetsGuardedDirectCall) {
  auto C = compileMJ("mono.mj", kMonoSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  EXPECT_EQ(T0->Tier, 0u);
  ASSERT_TRUE(T0->Profile);
  EXPECT_EQ(T0->countOp(XOp::DispatchMono), 0u);
  Outcome O0 = runModule(*T0, *C->Table);
  EXPECT_EQ(O0.Output, "10");
  EXPECT_GT(T0->Profile->totalDispatchSamples(), 0u);

  // Inlining off: this test pins the bare DispatchMono state machine and
  // its exact ICHits tallies (a spliced site guards via GuardInline and
  // does not tally hits; exec_inline_test covers that shape).
  PrepareOptions NoInline;
  NoInline.NoInlining = true;
  auto T1 = reprepareModule(*T0, NoInline);
  ASSERT_TRUE(T1);
  EXPECT_EQ(T1->countOp(XOp::DispatchMono), 1u);
  EXPECT_EQ(T1->countOp(XOp::Dispatch), 0u);
  // The lowering-time tallies agree: one profiled-monomorphic site,
  // lowered to a one-guard direct call (a mono IC), nothing devirted.
  EXPECT_EQ(T1->Tiering.ProfiledMono, 1u);
  EXPECT_EQ(T1->Tiering.MonoICs, 1u);
  EXPECT_EQ(T1->Tiering.MonoLoweredDirect, 1u);
  EXPECT_EQ(T1->Tiering.DevirtCalls, 0u);
  EXPECT_EQ(T1->Tiering.PolyICs, 0u);
  EXPECT_EQ(T1->Tiering.Megamorphic, 0u);
  // Guard always hits on the same workload: all hits, no misses.
  Outcome O1 = runModule(*T1, *C->Table);
  EXPECT_EQ(O1.Output, "10");
  EXPECT_EQ(T1->ICHits.load(), 10u);
  EXPECT_EQ(T1->ICMisses.load(), 0u);
}

// The "tier1_mono_sites == 0" artifact, pinned: on a closed-world corpus
// a profiled-monomorphic site is usually subsumed by devirtualization
// (single receiver class implies single implementation), so it never
// emits DispatchMono — classification must happen at lowering time, not
// by counting opcodes. The site still counts as profiled-mono AND as
// lowered-direct.
TEST(TierIC, DevirtSubsumesProfiledMonoSiteInStats) {
  auto C = compileMJ("devstat.mj",
                     "class A { int f() { return 7; } } "
                     "class B extends A { } "
                     "class Main { static void main() { A x = new B(); "
                     "int s = 0; int i = 0; while (i < 4) { "
                     "s = s + x.f(); i = i + 1; } IO.printInt(s); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table); // Profile records only B receivers.
  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);
  // Opcode census alone would report zero mono sites...
  EXPECT_EQ(T1->countOp(XOp::DispatchMono), 0u);
  EXPECT_EQ(T1->countOp(XOp::Dispatch), 0u);
  // ...but the site was profiled-mono and lowered direct via devirt.
  EXPECT_EQ(T1->Tiering.ProfiledMono, 1u);
  EXPECT_EQ(T1->Tiering.DevirtCalls, 1u);
  EXPECT_EQ(T1->Tiering.MonoLoweredDirect, 1u);
  EXPECT_EQ(T1->Tiering.MonoICs, 0u);
  EXPECT_EQ(runModule(*T1, *C->Table).Output, "28");
}

TEST(TierIC, GuardMissFallsBackToVtableAndCounts) {
  auto C = compileMJ("miss.mj", kMonoSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table); // Profile records only A receivers.
  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);
  ASSERT_EQ(T1->countOp(XOp::DispatchMono), 1u);

  // Now feed go() a B: the mono guard (A) misses, the vtable fallback
  // must still reach B.f, and the miss must be counted.
  const MethodSymbol *Go = findMethod(*C->Table, "Main", "go");
  const ClassSymbol *B = nullptr;
  for (const auto &Cl : C->Table->getClasses())
    if (Cl->Name == "B")
      B = Cl.get();
  ASSERT_TRUE(Go && B);
  Runtime RT(*C->Table);
  TSAExec X(*T1, RT);
  ExecResult R = X.call(Go, {Value::makeRef(RT.allocObject(B))});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.I, 2); // B.f, not the cached A.f.
  EXPECT_EQ(T1->ICMisses.load(), 1u);
  EXPECT_EQ(T1->ICHits.load(), 0u);
  // Default options inline this mono site, so the B receiver first
  // missed the splice's GuardInline, then the out-of-line DispatchMono
  // fallback (tallied above) reached the vtable.
  EXPECT_EQ(T1->Tiering.InlinedSites, 1u);
  EXPECT_EQ(T1->InlineGuardMisses.load(), 1u);
}

TEST(TierIC, PolymorphicSiteGetsBoundedPIC) {
  auto C = compileMJ(
      "poly.mj",
      "class A { int f() { return 1; } } "
      "class B extends A { int f() { return 2; } } "
      "class C extends A { int f() { return 3; } } "
      "class Main { static int go(A a) { return a.f(); } "
      "static void main() { int s = 0; int i = 0; while (i < 12) { "
      "A x; if (i % 3 == 0) { x = new A(); } else { "
      "if (i % 3 == 1) { x = new B(); } else { x = new C(); } } "
      "s = s + go(x); i = i + 1; } IO.printInt(s); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  Outcome O0 = runModule(*T0, *C->Table);
  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);
  EXPECT_EQ(T1->countOp(XOp::DispatchIC), 1u);
  EXPECT_EQ(T1->countOp(XOp::Dispatch), 0u);
  Outcome O1 = runModule(*T1, *C->Table);
  EXPECT_EQ(O1.Output, O0.Output);
  EXPECT_EQ(T1->ICHits.load(), 12u); // All three ways resident.
  EXPECT_EQ(T1->ICMisses.load(), 0u);
}

TEST(TierIC, MegamorphicSiteDemotesToVtable) {
  // Five receiver classes at one site overflow the 4-way profile: the
  // site must stay a plain vtable Dispatch at tier 1 (and still agree).
  auto C = compileMJ(
      "mega.mj",
      "class A { int f() { return 1; } } "
      "class B extends A { int f() { return 2; } } "
      "class C extends A { int f() { return 3; } } "
      "class D extends A { int f() { return 4; } } "
      "class E extends A { int f() { return 5; } } "
      "class Main { static int go(A a) { return a.f(); } "
      "static void main() { int s = 0; int i = 0; while (i < 10) { "
      "A x; int k = i % 5; if (k == 0) { x = new A(); } else { "
      "if (k == 1) { x = new B(); } else { if (k == 2) { x = new C(); } "
      "else { if (k == 3) { x = new D(); } else { x = new E(); } } } } "
      "s = s + go(x); i = i + 1; } IO.printInt(s); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  Outcome O0 = runModule(*T0, *C->Table);
  EXPECT_EQ(O0.Output, "30");
  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);
  EXPECT_EQ(T1->countOp(XOp::DispatchMono), 0u);
  EXPECT_EQ(T1->countOp(XOp::DispatchIC), 0u);
  EXPECT_EQ(T1->countOp(XOp::Dispatch), 1u);
  Outcome O1 = runModule(*T1, *C->Table);
  EXPECT_EQ(O1.Output, "30");
  EXPECT_EQ(T1->ICHits.load(), 0u); // No caches formed, none counted.
}

TEST(TierIC, ClosedWorldMonomorphicDevirtualizesWithoutGuard) {
  // No override anywhere: every possible receiver resolves the slot to
  // A.f, so the site needs no guard at all — a plain direct call, even
  // with an empty profile.
  auto C = compileMJ("devirt.mj",
                     "class A { int f() { return 7; } } "
                     "class B extends A { } "
                     "class Main { static void main() { A x = new B(); "
                     "IO.printInt(x.f()); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  ASSERT_EQ(T0->countOp(XOp::Dispatch), 1u);
  auto T1 = reprepareModule(*T0); // Note: no profiling run needed.
  ASSERT_TRUE(T1);
  EXPECT_EQ(T1->countOp(XOp::Dispatch), 0u);
  EXPECT_EQ(T1->countOp(XOp::DispatchMono), 0u);
  Outcome O1 = runModule(*T1, *C->Table);
  EXPECT_EQ(O1.Output, "7");
  EXPECT_EQ(T1->ICHits.load(), 0u); // Direct call: no guard, no tally.
}

//===----------------------------------------------------------------------===//
// Superinstruction fusion structure.
//===----------------------------------------------------------------------===//

TEST(TierFusion, FusesPairsAndPreservesStreamLength) {
  // Stores assign from locals so the check and the access stay adjacent
  // (the RHS is generated between lvalue checks and the store otherwise).
  auto C = compileMJ(
      "fuse.mj",
      "class P { int v; } "
      "class Main { static void main() { int[] a = new int[8]; "
      "P p = new P(); int t = 3; p.v = t; int i = 0; "
      "while (i < 8) { int w = i + p.v; a[i] = w; i = i + 1; } "
      "int s = 0; i = 0; while (i < 8) { s = s + a[i]; i = i + 1; } "
      "double d = 0.5; while (d < 4.0) { d = d + 1.0; } "
      "IO.printInt(s); IO.printInt(p.v); IO.printDouble(d); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);

  // Every fusion family fires at least once on this program.
  size_t BrCmps = 0;
  for (XOp Op : {XOp::BrCmpLtI, XOp::BrCmpLeI, XOp::BrCmpGtI, XOp::BrCmpGeI,
                 XOp::BrCmpEqI, XOp::BrCmpNeI})
    BrCmps += T1->countOp(Op);
  EXPECT_GT(BrCmps, 0u);
  size_t BrCmpDs = 0;
  for (XOp Op : {XOp::BrCmpLtD, XOp::BrCmpLeD, XOp::BrCmpGtD, XOp::BrCmpGeD,
                 XOp::BrCmpEqD, XOp::BrCmpNeD})
    BrCmpDs += T1->countOp(Op);
  EXPECT_GT(BrCmpDs, 0u);
  EXPECT_GT(T1->countOp(XOp::IdxGetElt), 0u);
  EXPECT_GT(T1->countOp(XOp::IdxSetElt), 0u);
  EXPECT_GT(T1->countOp(XOp::NullGetField), 0u);
  EXPECT_GT(T1->countOp(XOp::NullSetField), 0u);
  // The loop back edges carry phi copies: the move fusions fire too.
  EXPECT_GT(T1->countOp(XOp::Move2) + T1->countOp(XOp::MoveJmp), 0u);

  // Fusion never moves code: same stream length per unit (shadow slots).
  ASSERT_EQ(T1->Units.size(), T0->Units.size());
  for (size_t I = 0; I != T0->Units.size(); ++I)
    EXPECT_EQ(T1->Units[I]->Code.size(), T0->Units[I]->Code.size());

  // And the NoFusion mask really masks.
  PrepareOptions NoFuse;
  NoFuse.NoFusion = true;
  auto T1NF = reprepareModule(*T0, NoFuse);
  ASSERT_TRUE(T1NF);
  for (XOp Op : {XOp::BrCmpLtI, XOp::BrCmpLtD, XOp::NullGetField,
                 XOp::NullSetField, XOp::IdxGetElt, XOp::IdxSetElt,
                 XOp::Move2, XOp::MoveJmp})
    EXPECT_EQ(T1NF->countOp(Op), 0u) << xopName(Op);

  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);
  EXPECT_EQ(runModule(*T1, *C->Table).Output, Ref.Output);
  EXPECT_EQ(runModule(*T1NF, *C->Table).Output, Ref.Output);
}

// The per-unit fusion guard: when a unit's only fusable pairs are
// compare+conditional-branch (the one family with a measured-regression
// history) and it has no ICs or devirted calls to gain from re-lowering,
// tier 1 keeps the tier-0 stream for that unit. NoFusionGuard forces the
// old behavior; semantics agree either way.
TEST(TierFusion, CompareBranchOnlyUnitKeepsTier0Stream) {
  auto C = compileMJ(
      "guard.mj",
      "class Main { "
      "static int clamp(int x) { if (x < 0) { return 0; } return x; } "
      "static void main() { IO.printInt(clamp(0 - 5)); "
      "IO.printInt(clamp(7)); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table);
  const MethodSymbol *Clamp = findMethod(*C->Table, "Main", "clamp");
  ASSERT_TRUE(Clamp);
  auto BrCmpsIn = [&](const PreparedModule &PM) {
    size_t N = 0;
    for (const auto &U : PM.Units) {
      if (U->Symbol != Clamp)
        continue;
      for (const ExecInst &In : U->Code)
        for (XOp Op : {XOp::BrCmpLtI, XOp::BrCmpLeI, XOp::BrCmpGtI,
                       XOp::BrCmpGeI, XOp::BrCmpEqI, XOp::BrCmpNeI})
          if (In.Op == Op)
            ++N;
    }
    return N;
  };

  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);
  EXPECT_GE(T1->Tiering.FusionGuardedUnits, 1u);
  EXPECT_EQ(BrCmpsIn(*T1), 0u) << "guarded unit was fused anyway";

  PrepareOptions Force;
  Force.NoFusionGuard = true;
  auto T1F = reprepareModule(*T0, Force);
  ASSERT_TRUE(T1F);
  EXPECT_EQ(T1F->Tiering.FusionGuardedUnits, 0u);
  EXPECT_GT(BrCmpsIn(*T1F), 0u) << "unguarded compare+branch not fused";

  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);
  EXPECT_EQ(runModule(*T1, *C->Table).Output, Ref.Output);
  EXPECT_EQ(runModule(*T1F, *C->Table).Output, Ref.Output);
}

TEST(TierFusion, TreeWalkOracleAgreesOnTier1) {
  auto C = compileMJ("oracle1.mj",
                     "class Main { static int fib(int n) { "
                     "if (n < 2) { return n; } "
                     "return fib(n - 1) + fib(n - 2); } "
                     "static void main() { IO.printInt(fib(15)); } }");
  ASSERT_TRUE(C->ok());
  auto T1 = tier1AfterOneRun(*C->TSA, *C->Table);
  ASSERT_TRUE(T1);
  Runtime RT(*C->Table);
  ExecOptions Opts;
  Opts.TreeWalkOracle = true; // Same flag SAFETSA_EXEC_ORACLE sets.
  TSAExec X(*T1, RT, Opts);
  ExecResult R = X.runMain();
  EXPECT_EQ(R.Err, RuntimeError::None);
  EXPECT_FALSE(X.oracleDiverged());
  EXPECT_EQ(RT.getOutput(), "610");
}

//===----------------------------------------------------------------------===//
// Concurrency: tier-0 profiling and tier-1 IC tallies are TSan-clean.
//===----------------------------------------------------------------------===//

TEST(TierConcurrency, ConcurrentProfilingAndTier1Execution) {
  auto C = compileMJ("conc.mj", kMonoSrc);
  ASSERT_TRUE(C->ok());
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);

  // Phase 1: many threads profile one tier-0 module concurrently.
  constexpr unsigned NumThreads = 8;
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&] {
        Runtime RT(*C->Table);
        TSAExec X(*T0, RT);
        X.runMain();
      });
    for (auto &Th : Threads)
      Th.join();
  }
  // Relaxed counters may drop no increments here: every activation of
  // main was counted.
  EXPECT_EQ(T0->Profile->invocations(T0->MainUnit->Index), NumThreads);

  // Phase 2: many threads execute the re-quickened tier 1 concurrently;
  // the per-call IC flushes must add up exactly. Inlining off so every
  // guard hit lands in ICHits (spliced guards tally only misses).
  PrepareOptions NoInline;
  NoInline.NoInlining = true;
  auto T1 = reprepareModule(*T0, NoInline);
  ASSERT_TRUE(T1);
  {
    std::vector<std::thread> Threads;
    for (unsigned T = 0; T != NumThreads; ++T)
      Threads.emplace_back([&] {
        Runtime RT(*C->Table);
        TSAExec X(*T1, RT);
        X.runMain();
      });
    for (auto &Th : Threads)
      Th.join();
  }
  EXPECT_EQ(T1->ICHits.load(), 10u * NumThreads);
  EXPECT_EQ(T1->ICMisses.load(), 0u);
}

} // namespace
