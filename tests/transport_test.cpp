//===- tests/transport_test.cpp - Safe-phi check transport ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper §4 mechanism: null-check certificates travelling across
/// phi-joins on the safe-ref plane. These cases are invisible to plain
/// dominance-scoped CSE — the certificate exists on *every* path but in
/// *different* instructions — so removal requires a phi of certificates.
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

struct Result {
  std::unique_ptr<CompiledProgram> P;
  OptStats Stats;
  std::string Output;
  unsigned SafePhis = 0;
  unsigned NullChecks = 0;
};

Result optimize(const std::string &Src, bool Transport = true) {
  Result R;
  R.P = compileMJ("transport.mj", Src);
  EXPECT_TRUE(R.P->ok()) << R.P->renderDiagnostics();
  OptOptions O;
  O.CheckTransport = Transport;
  R.Stats = optimizeModule(*R.P->TSA, O);
  TSAVerifier V(*R.P->TSA);
  EXPECT_TRUE(V.verify())
      << (V.getErrors().empty() ? "" : V.getErrors().front());
  Runtime RT(*R.P->Table);
  TSAInterpreter I(*R.P->TSA, RT);
  ExecResult E = I.runMain();
  EXPECT_EQ(E.Err, RuntimeError::None) << runtimeErrorName(E.Err);
  R.Output = RT.getOutput();
  for (const auto &M : R.P->TSA->Methods)
    M->forEachInstruction([&](const Instruction &I) {
      if (I.isPhi() && I.DstSafe)
        ++R.SafePhis;
      if (I.Op == Opcode::NullCheck)
        ++R.NullChecks;
    });
  return R;
}

// Both arms check x (through different instructions); the post-join
// access must not recheck.
const char *DiamondSrc =
    "class C { int v; } "
    "class Main { static int f(C a, C b, boolean c) { "
    "C x = null; "
    "if (c) { x = a; IO.printInt(x.v); } "
    "else { x = b; IO.printInt(x.v); } "
    "return x.v; } "
    "static void main() { IO.printInt(f(new C(), new C(), true)); } }";

TEST(CheckTransport, DiamondRecheckRemoved) {
  Result With = optimize(DiamondSrc, true);
  Result Without = optimize(DiamondSrc, false);
  EXPECT_GE(With.Stats.TransportedChecks, 1u);
  EXPECT_EQ(With.SafePhis, 1u);
  EXPECT_LT(With.NullChecks, Without.NullChecks);
  EXPECT_EQ(With.Output, Without.Output);
  EXPECT_EQ(With.Output, "00"); // One arm's print + main's print.
}

TEST(CheckTransport, NotAppliedWhenOnePathUnchecked) {
  // The else-arm never dereferences b: no certificate on that path, so
  // the post-join check must stay.
  Result R = optimize(
      "class C { int v; } "
      "class Main { static int f(C a, C b, boolean c) { "
      "C x = null; "
      "if (c) { x = a; IO.printInt(x.v); } else { x = b; } "
      "return x.v; } "
      "static void main() { IO.printInt(f(new C(), new C(), false)); } }");
  EXPECT_EQ(R.Stats.TransportedChecks, 0u);
  EXPECT_EQ(R.SafePhis, 0u);
}

TEST(CheckTransport, NullOnOnePathStillTraps) {
  // b arrives null through the unchecked arm; the retained check must
  // still fire. (With transport, this join is not coverable.)
  auto P = compileMJ(
      "transport.mj",
      "class C { int v; } "
      "class Main { static int f(C a, C b, boolean c) { "
      "C x = null; "
      "if (c) { x = a; IO.printInt(x.v); } else { x = b; } "
      "return x.v; } "
      "static void main() { IO.printInt(f(new C(), null, false)); } }");
  ASSERT_TRUE(P->ok());
  optimizeModule(*P->TSA);
  Runtime RT(*P->Table);
  TSAInterpreter I(*P->TSA, RT);
  EXPECT_EQ(I.runMain().Err, RuntimeError::NullPointer);
}

TEST(CheckTransport, LoopCarriedCertificate) {
  // p is checked before the loop and re-assigned to a checked value in
  // the body: the in-loop check of the phi rides the safe phi, including
  // around the back edge.
  Result With = optimize(
      "class Node { int v; Node next; } "
      "class Main { static int sum(Node head, int n) { "
      "Node p = head; "
      "IO.printInt(p.v); " // certificate for the entry edge
      "int s = 0; "
      "for (int i = 0; i < n; i++) { "
      "  s = s + p.v; "    // recheck of the loop phi
      "  Node q = p.next; "
      "  if (q == null) break; "
      "  IO.printInt(q.v); " // certificate for the back edge
      "  p = q; "
      "} return s; } "
      "static void main() { "
      "Node a = new Node(); Node b = new Node(); "
      "a.v = 1; b.v = 2; a.next = b; "
      "IO.printInt(sum(a, 5)); } }",
      true);
  Result Without = optimize(
      "class Node { int v; Node next; } "
      "class Main { static int sum(Node head, int n) { "
      "Node p = head; "
      "IO.printInt(p.v); "
      "int s = 0; "
      "for (int i = 0; i < n; i++) { "
      "  s = s + p.v; "
      "  Node q = p.next; "
      "  if (q == null) break; "
      "  IO.printInt(q.v); "
      "  p = q; "
      "} return s; } "
      "static void main() { "
      "Node a = new Node(); Node b = new Node(); "
      "a.v = 1; b.v = 2; a.next = b; "
      "IO.printInt(sum(a, 5)); } }",
      false);
  EXPECT_EQ(With.Output, Without.Output);
  EXPECT_GE(With.Stats.TransportedChecks, 1u);
  EXPECT_LE(With.NullChecks, Without.NullChecks);
}

TEST(CheckTransport, SurvivesCodecRoundTrip) {
  // Safe-ref phis are first-class wire citizens: encode, decode into a
  // fresh table, verify, run.
  Result R = optimize(DiamondSrc, true);
  ASSERT_EQ(R.SafePhis, 1u);
  std::string Err;
  auto Unit = decodeModule(encodeModule(*R.P->TSA), &Err);
  ASSERT_TRUE(Unit) << Err;
  TSAVerifier V(*Unit->Module);
  EXPECT_TRUE(V.verify());
  unsigned SafePhis = 0;
  for (const auto &M : Unit->Module->Methods)
    M->forEachInstruction([&](const Instruction &I) {
      if (I.isPhi() && I.DstSafe)
        ++SafePhis;
    });
  EXPECT_EQ(SafePhis, 1u);
  Runtime RT(*Unit->Table);
  TSAInterpreter I(*Unit->Module, RT);
  ExecResult E = I.runMain();
  EXPECT_EQ(E.Err, RuntimeError::None);
  EXPECT_EQ(RT.getOutput(), R.Output);
}

TEST(CheckTransport, ForgedSafePhiRejected) {
  // A safe phi whose operand is an UNCHECKED value must not verify:
  // safety cannot be minted at a join.
  Result R = optimize(DiamondSrc, true);
  ASSERT_EQ(R.SafePhis, 1u);
  Instruction *SafePhi = nullptr;
  Instruction *RawValue = nullptr;
  for (const auto &M : R.P->TSA->Methods)
    M->forEachInstruction([&](const Instruction &I) {
      if (I.isPhi() && I.DstSafe && !SafePhi)
        SafePhi = const_cast<Instruction *>(&I);
      if (I.Op == Opcode::Param && I.OpType && I.OpType->isClass() &&
          !RawValue)
        RawValue = const_cast<Instruction *>(&I);
    });
  ASSERT_NE(SafePhi, nullptr);
  ASSERT_NE(RawValue, nullptr);
  SafePhi->Operands[0] = RawValue; // ref plane into a safe-ref phi.
  TSAVerifier V(*R.P->TSA);
  EXPECT_FALSE(V.verify());
}

} // namespace
