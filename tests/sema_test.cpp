//===- tests/sema_test.cpp - Semantic analysis tests ----------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

/// Compiles and expects success.
std::unique_ptr<CompiledProgram> ok(const std::string &Src) {
  auto P = compileMJ("sema.mj", Src, /*EmitTSA=*/false);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  return P;
}

/// Compiles and expects an error whose message contains \p Needle.
void bad(const std::string &Src, const std::string &Needle) {
  auto P = compileMJ("sema.mj", Src, /*EmitTSA=*/false);
  EXPECT_FALSE(P->ok()) << "expected error containing '" << Needle << "'";
  EXPECT_TRUE(P->Diags.containsMessage(Needle))
      << "wanted '" << Needle << "', got:\n"
      << P->renderDiagnostics();
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

TEST(Sema, DuplicateClass) {
  bad("class A {} class A {}", "duplicate class");
}

TEST(Sema, BuiltinClassClash) {
  bad("class IO {}", "conflicts with a builtin class");
  bad("class Object {}", "conflicts with a builtin class");
  bad("class Math {}", "conflicts with a builtin class");
}

TEST(Sema, UnknownSuperclass) {
  bad("class A extends Nope {}", "unknown superclass");
}

TEST(Sema, CannotExtendBuiltins) {
  bad("class A extends IO {}", "cannot extend builtin class");
}

TEST(Sema, ExtendingObjectIsFine) {
  ok("class A extends Object {}");
}

TEST(Sema, InheritanceCycle) {
  bad("class A extends B {} class B extends A {}", "inheritance cycle");
}

TEST(Sema, SelfInheritance) {
  bad("class A extends A {}", "cycle");
}

TEST(Sema, DuplicateField) {
  bad("class A { int x; double x; }", "duplicate field");
}

TEST(Sema, DuplicateMethodSignature) {
  bad("class A { void f(int a) {} void f(int b) {} }",
      "duplicate method signature");
}

TEST(Sema, OverloadingIsAllowed) {
  ok("class A { void f(int a) {} void f(double a) {} void f() {} }");
}

TEST(Sema, OverrideChangingReturnTypeRejected) {
  bad("class A { int f() { return 1; } } "
      "class B extends A { double f() { return 1.0; } }",
      "changes the return type");
}

TEST(Sema, ValidOverride) {
  ok("class A { int f() { return 1; } } "
    "class B extends A { int f() { return 2; } }");
}

TEST(Sema, UnknownFieldType) {
  bad("class A { Zork z; }", "unknown type");
}

TEST(Sema, VoidField) {
  bad("class A { void v; }", "cannot have type 'void'");
}

TEST(Sema, StaticInitMustBeConstant) {
  bad("class A { static int x = f(); static int f() { return 1; } }",
      "constant expression");
  ok("class A { static int x = 3 * 7 + (1 << 4); }");
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TEST(Sema, UndeclaredIdentifier) {
  bad("class A { void f() { x = 1; } }", "undeclared identifier");
}

TEST(Sema, LocalRedeclaration) {
  bad("class A { void f() { int x; int x; } }", "redeclaration");
}

TEST(Sema, BlockScoping) {
  ok("class A { void f() { { int x; } { int x; } } }");
  bad("class A { void f() { int x; { int x; } } }", "redeclaration");
}

TEST(Sema, ArithmeticTypeRules) {
  ok("class A { int f(int a, char c) { return a + c; } }");
  ok("class A { double f(int a, double d) { return a * d; } }");
  bad("class A { int f(boolean b) { return b + 1; } }", "numeric");
  bad("class A { void f(A x) { int y = x + 1; } }", "numeric");
}

TEST(Sema, NarrowingNeedsCast) {
  bad("class A { int f(double d) { return d; } }", "cannot convert");
  ok("class A { int f(double d) { return (int) d; } }");
  bad("class A { char f(int i) { return i; } }", "cannot convert");
  ok("class A { char f(int i) { return (char) i; } }");
}

TEST(Sema, WideningIsImplicit) {
  ok("class A { double f(int i) { return i; } }");
  ok("class A { int f(char c) { return c; } }");
  ok("class A { double f(char c) { return c; } }");
}

TEST(Sema, BooleanCastsRejected) {
  bad("class A { int f(boolean b) { return (int) b; } }", "invalid cast");
  bad("class A { boolean f(int i) { return (boolean) i; } }",
      "invalid cast");
}

TEST(Sema, BitwiseRequiresInts) {
  ok("class A { int f(int a, char c) { return (a & c) | (a ^ 3) << 2; } }");
  bad("class A { int f(double d) { return 1 & d; } }", "integer operands");
  bad("class A { int f(boolean b) { return 1 | b; } }", "integer operands");
}

TEST(Sema, LogicalRequiresBooleans) {
  bad("class A { boolean f(int i) { return i && true; } }",
      "cannot convert");
  bad("class A { boolean f() { return !1; } }", "boolean operand");
}

TEST(Sema, ConditionsMustBeBoolean) {
  bad("class A { void f(int i) { if (i) {} } }", "cannot convert");
  bad("class A { void f(int i) { while (i) {} } }", "cannot convert");
  bad("class A { void f(int i) { for (;i;) {} } }", "cannot convert");
}

TEST(Sema, EqualityRules) {
  ok("class A { boolean f(int a, double b) { return a == b; } }");
  ok("class A { boolean f(boolean a, boolean b) { return a != b; } }");
  ok("class A { boolean f(A x) { return x == null; } }");
  ok("class B {} class A extends B { boolean f(A a, B b) "
     "{ return a == b; } }");
  bad("class B {} class A { boolean f(A a, B b) { return a == b; } }",
      "unrelated reference types");
  bad("class A { boolean f(int i, A a) { return i == a; } }",
      "invalid operands");
  bad("class A { boolean f(boolean b, int i) { return b == i; } }",
      "invalid operands");
}

TEST(Sema, RefCastRules) {
  ok("class B {} class A extends B { B up(A a) { return (B) a; } "
     "A down(B b) { return (A) b; } }");
  bad("class B {} class A { A f(B b) { return (A) b; } }",
      "unrelated types");
}

TEST(Sema, InstanceofRules) {
  ok("class B {} class A extends B { boolean f(B b) "
     "{ return b instanceof A; } }");
  bad("class A { boolean f(int i) { return i instanceof A; } }",
      "reference operand");
}

TEST(Sema, ArrayRules) {
  ok("class A { int f(int[] a) { return a[0] + a.length; } }");
  ok("class A { int f(int[] a, char c) { return a[c]; } }");
  bad("class A { int f(int[] a, double d) { return a[d]; } }",
      "cannot convert");
  bad("class A { int f(int x) { return x[0]; } }", "not an array");
  bad("class A { int f(int[] a) { return a.size; } }", "no field");
  bad("class A { void f(int[] a) { a.length = 3; } }", "read-only");
}

TEST(Sema, ArrayCovarianceRejected) {
  // MJ arrays are invariant (unlike Java): B[] is not an A[].
  bad("class B {} class A extends B { B[] f(A[] a) { return a; } }",
      "cannot convert");
}

TEST(Sema, NewArraySizeMustBeInt) {
  bad("class A { void f(double d) { int[] a = new int[d]; } }",
      "cannot convert");
}

TEST(Sema, FieldAccessRules) {
  ok("class A { int x; int f(A a) { return a.x; } }");
  bad("class A { int x; int f(A a) { return a.y; } }", "no field");
  bad("class A { static int s; int f(A a) { return a.s; } }",
      "accessed through an instance");
  ok("class A { static int s; int f() { return A.s; } }");
  ok("class A { static int s; int f() { return s; } }");
}

TEST(Sema, ThisRules) {
  bad("class A { static void f() { this.g(); } void g() {} }",
      "static context");
  bad("class A { int x; static int f() { return x; } }", "static context");
  ok("class A { int x; int f() { return this.x; } }");
}

TEST(Sema, CallResolution) {
  bad("class A { void f() { g(); } }", "unknown method");
  bad("class A { void g(int i) {} void f() { g(); } }",
      "no applicable overload");
  bad("class A { void g(int i) {} void f(A a) { a.g(true); } }",
      "no applicable overload");
  bad("class A { void f() { IO.nope(1); } }", "no static method");
  // Static method called from instance context is fine.
  ok("class A { static int g() { return 1; } int f() { return g(); } }");
  // Instance method from static context is not.
  bad("class A { int g() { return 1; } static int f() { return g(); } }",
      "static context");
}

TEST(Sema, OverloadSelectsMostSpecific) {
  // int argument prefers f(int) over f(double).
  auto P = ok("class A { static int f(int x) { return 1; } "
              "static int f(double x) { return 2; } "
              "static int main() { return f(3); } }");
  (void)P;
}

TEST(Sema, AmbiguousOverload) {
  bad("class A { void f(int a, double b) {} void f(double a, int b) {} "
      "void g() { f(1, 2); } }",
      "ambiguous");
}

TEST(Sema, ConstructorResolution) {
  ok("class A { A(int x) {} } class B { A f() { return new A(1); } }");
  bad("class A { A(int x) {} } class B { A f() { return new A(); } }",
      "no applicable overload");
  bad("class B { Object f() { return new IO(); } }",
      "cannot instantiate builtin");
  bad("class A { } class B { A f() { return new A(5); } }",
      "no constructors but arguments");
}

TEST(Sema, FinalFieldRules) {
  ok("class A { final int x; A() { x = 1; } }");
  bad("class A { final int x; void f() { x = 2; } }",
      "assignment to final field");
  bad("class A { final int x; } class B { void f(A a) { a.x = 1; } }",
      "assignment to final field");
}

TEST(Sema, CompoundAssignmentRules) {
  ok("class A { void f(int i) { i += 2; i *= 3; } }");
  ok("class A { void f(double d) { d += 1; d /= 2.0; } }");
  bad("class A { void f(int i, double d) { i += d; } }", "narrow");
}

TEST(Sema, IncDecRules) {
  ok("class A { void f(int i, double d, char c) { i++; d--; c++; } }");
  bad("class A { void f(boolean b) { b++; } }", "numeric operand");
}

TEST(Sema, VoidValueContexts) {
  bad("class A { void g() {} void f() { int x = g(); } }",
      "cannot convert");
}

TEST(Sema, ReturnRules) {
  bad("class A { int f() { } }", "fall off the end");
  bad("class A { int f(boolean b) { if (b) return 1; } }",
      "fall off the end");
  ok("class A { int f(boolean b) { if (b) return 1; else return 2; } }");
  ok("class A { int f() { while (true) { } } }");
  ok("class A { int f(int n) { for (;;) { if (n > 0) return n; n++; } } }");
  bad("class A { int f() { while (true) { break; } } }",
      "fall off the end");
  bad("class A { void f() { return 1; } }", "void method cannot return");
  bad("class A { int f() { return; } }", "must return a value");
}

TEST(Sema, BreakContinueOutsideLoop) {
  bad("class A { void f() { break; } }", "outside of a loop");
  bad("class A { void f() { continue; } }", "outside of a loop");
  ok("class A { void f() { while (true) { if (true) break; continue; } } "
     "}");
}

TEST(Sema, ClassNameAsValueRejected) {
  bad("class A { void f() { int x = IO; } }", "class name");
  bad("class A { void f(A a) { a = Math; } }", "class name");
}

TEST(Sema, VTableLayout) {
  auto P = ok("class A { int f() { return 1; } int g() { return 2; } } "
              "class B extends A { int g() { return 3; } "
              "int h() { return 4; } }");
  ClassSymbol *A = P->Table->lookup("A");
  ClassSymbol *B = P->Table->lookup("B");
  ASSERT_EQ(A->VTable.size(), 2u);
  ASSERT_EQ(B->VTable.size(), 3u);
  // Slot 0/1 inherited; g overridden in place; h appended.
  EXPECT_EQ(B->VTable[0], A->VTable[0]);
  EXPECT_NE(B->VTable[1], A->VTable[1]);
  EXPECT_EQ(B->VTable[1]->Owner, B);
  EXPECT_EQ(B->VTable[2]->Name, "h");
}

TEST(Sema, InstanceLayoutConcatenatesSupers) {
  auto P = ok("class A { int a; int b; } "
              "class B extends A { int c; static int s; }");
  ClassSymbol *B = P->Table->lookup("B");
  ASSERT_EQ(B->InstanceLayout.size(), 3u);
  EXPECT_EQ(B->InstanceLayout[0]->Name, "a");
  EXPECT_EQ(B->InstanceLayout[2]->Name, "c");
  EXPECT_EQ(B->InstanceLayout[2]->Slot, 2u);
}

TEST(Sema, ImplicitConversionInsertsCasts) {
  // double d = 1 + 2 must wrap the int expression in an IntToDouble cast.
  auto P = ok("class A { void f() { double d = 1 + 2; } }");
  const auto &Body = P->AST.Classes[0]->Methods[0]->Body->Stmts;
  const auto &Decl = static_cast<const VarDeclStmt &>(*Body[0]);
  ASSERT_EQ(Decl.Init->Kind, ExprKind::Cast);
  EXPECT_EQ(static_cast<const CastExpr &>(*Decl.Init).Lowering,
            CastLowering::IntToDouble);
}

} // namespace
