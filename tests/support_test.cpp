//===- tests/support_test.cpp - Support library tests ---------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitStream.h"
#include "support/Diagnostics.h"
#include "support/ShardedCounter.h"
#include "support/SourceLoc.h"

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

using namespace safetsa;

namespace {

//===----------------------------------------------------------------------===//
// BitStream
//===----------------------------------------------------------------------===//

TEST(BitStream, SingleBits) {
  BitWriter W;
  bool Pattern[] = {true, false, true, true, false, false, true, false,
                    true, true, true};
  for (bool B : Pattern)
    W.writeBit(B);
  std::vector<uint8_t> Bytes = W.take();
  BitReader R(Bytes);
  for (bool B : Pattern)
    EXPECT_EQ(R.readBit(), B);
  EXPECT_FALSE(R.hasOverrun());
}

TEST(BitStream, FixedFields) {
  BitWriter W;
  W.writeFixed(0xdeadbeefcafe1234ull, 64);
  W.writeFixed(0x2a, 7);
  W.writeFixed(1, 1);
  std::vector<uint8_t> Bytes = W.take();
  BitReader R(Bytes);
  EXPECT_EQ(R.readFixed(64), 0xdeadbeefcafe1234ull);
  EXPECT_EQ(R.readFixed(7), 0x2au);
  EXPECT_EQ(R.readFixed(1), 1u);
}

TEST(BitStream, BoundedIsPrefixFreeAndExact) {
  // Exhaustive check for small alphabets: every symbol round-trips, and
  // symbol sizes match the truncated-binary code lengths.
  for (uint64_t Bound = 1; Bound <= 40; ++Bound) {
    BitWriter W;
    for (uint64_t V = 0; V < Bound; ++V)
      W.writeBounded(V, Bound);
    std::vector<uint8_t> Bytes = W.take();
    BitReader R(Bytes);
    for (uint64_t V = 0; V < Bound; ++V)
      EXPECT_EQ(R.readBounded(Bound), V) << "bound " << Bound;
    EXPECT_FALSE(R.hasOverrun());
  }
}

TEST(BitStream, BoundedOneSymbolAlphabetIsFree) {
  BitWriter W;
  for (int I = 0; I < 1000; ++I)
    W.writeBounded(0, 1);
  EXPECT_EQ(W.getBitCount(), 0u);
}

TEST(BitStream, BoundedUsesFloorLog2Bits) {
  // A power-of-two alphabet uses exactly log2(N) bits per symbol.
  BitWriter W;
  for (uint64_t V = 0; V < 16; ++V)
    W.writeBounded(V, 16);
  EXPECT_EQ(W.getBitCount(), 16 * 4u);
}

TEST(BitStream, VarUintRoundTrip) {
  uint64_t Cases[] = {0,    1,    127,        128,
                      255,  300,  (1u << 14), (1ull << 35),
                      ~0ull};
  BitWriter W;
  for (uint64_t V : Cases)
    W.writeVarUint(V);
  std::vector<uint8_t> Bytes = W.take();
  BitReader R(Bytes);
  for (uint64_t V : Cases)
    EXPECT_EQ(R.readVarUint(), V);
}

TEST(BitStream, StringRoundTrip) {
  BitWriter W;
  W.writeString("hello");
  W.writeString("");
  W.writeString(std::string("emb\0edded", 9));
  std::vector<uint8_t> Bytes = W.take();
  BitReader R(Bytes);
  EXPECT_EQ(R.readString(), "hello");
  EXPECT_EQ(R.readString(), "");
  EXPECT_EQ(R.readString(), std::string("emb\0edded", 9));
}

TEST(BitStream, OverrunIsStickyAndSafe) {
  std::vector<uint8_t> Bytes = {0xff};
  BitReader R(Bytes);
  R.readFixed(8);
  EXPECT_FALSE(R.hasOverrun());
  R.readBit();
  EXPECT_TRUE(R.hasOverrun());
  // Further reads keep returning zeros without crashing.
  EXPECT_EQ(R.readFixed(64), 0u);
  EXPECT_TRUE(R.hasOverrun());
}

TEST(BitStream, HostileStringLengthDoesNotAllocate) {
  // A declared length far beyond the buffer must set overrun, not OOM.
  BitWriter W;
  W.writeVarUint(~0ull >> 8);
  std::vector<uint8_t> Bytes = W.take();
  BitReader R(Bytes);
  std::string S = R.readString();
  EXPECT_TRUE(R.hasOverrun());
  EXPECT_TRUE(S.empty());
}

/// Property sweep: random (value, bound) sequences round-trip.
class BitStreamFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitStreamFuzz, RandomBoundedSequenceRoundTrips) {
  std::mt19937_64 Rng(GetParam());
  std::vector<std::pair<uint64_t, uint64_t>> Seq;
  BitWriter W;
  for (int I = 0; I < 500; ++I) {
    uint64_t Bound = 1 + Rng() % 1000;
    uint64_t V = Rng() % Bound;
    Seq.push_back({V, Bound});
    W.writeBounded(V, Bound);
  }
  std::vector<uint8_t> Bytes = W.take();
  BitReader R(Bytes);
  for (auto [V, Bound] : Seq)
    ASSERT_EQ(R.readBounded(Bound), V);
  EXPECT_FALSE(R.hasOverrun());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitStreamFuzz,
                         ::testing::Range(1u, 21u));

TEST(BitStream, FloorLog2) {
  EXPECT_EQ(floorLog2(1), 0u);
  EXPECT_EQ(floorLog2(2), 1u);
  EXPECT_EQ(floorLog2(3), 1u);
  EXPECT_EQ(floorLog2(4), 2u);
  EXPECT_EQ(floorLog2(1023), 9u);
  EXPECT_EQ(floorLog2(1024), 10u);
  EXPECT_EQ(floorLog2(~0ull), 63u);
}

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

TEST(SourceManager, LineAndColumn) {
  SourceManager SM("test.mj", "abc\ndef\n\nxy");
  EXPECT_EQ(SM.getLine(SourceLoc(0)), 1u);
  EXPECT_EQ(SM.getColumn(SourceLoc(0)), 1u);
  EXPECT_EQ(SM.getLine(SourceLoc(2)), 1u);
  EXPECT_EQ(SM.getColumn(SourceLoc(2)), 3u);
  EXPECT_EQ(SM.getLine(SourceLoc(4)), 2u); // 'd'
  EXPECT_EQ(SM.getColumn(SourceLoc(4)), 1u);
  EXPECT_EQ(SM.getLine(SourceLoc(8)), 3u); // empty line position
  EXPECT_EQ(SM.getLine(SourceLoc(9)), 4u); // 'x'
  EXPECT_EQ(SM.getColumn(SourceLoc(10)), 2u);
}

TEST(SourceManager, LineText) {
  SourceManager SM("t", "first\nsecond\nlast");
  EXPECT_EQ(SM.getLineText(1), "first");
  EXPECT_EQ(SM.getLineText(2), "second");
  EXPECT_EQ(SM.getLineText(3), "last");
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CountsAndSeverities) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLoc(0), "watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error(SourceLoc(1), "boom");
  D.note(SourceLoc(2), "related");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.getNumErrors(), 1u);
  EXPECT_EQ(D.getDiagnostics().size(), 3u);
  EXPECT_TRUE(D.containsMessage("boom"));
  EXPECT_FALSE(D.containsMessage("quiet"));
}

TEST(Diagnostics, RenderWithCaret) {
  SourceManager SM("file.mj", "int x = ;\n");
  DiagnosticEngine D;
  D.error(SourceLoc(8), "expected expression");
  std::string Out = D.render(&SM);
  EXPECT_NE(Out.find("file.mj:1:9: error: expected expression"),
            std::string::npos);
  EXPECT_NE(Out.find("^"), std::string::npos);
}

TEST(Diagnostics, RenderWithoutLocation) {
  DiagnosticEngine D;
  D.error(SourceLoc(), "global problem");
  std::string Out = D.render(nullptr);
  EXPECT_EQ(Out, "error: global problem\n");
}

TEST(ShardedCounter, SingleThreadedSumIsExact) {
  ShardedCounter C;
  EXPECT_EQ(C.sum(), 0u);
  for (unsigned I = 0; I != 1000; ++I)
    C.add();
  C.add(42);
  EXPECT_EQ(C.sum(), 1042u);
}

// The exactness contract the STATS wire relies on: N threads x M adds
// (with varying deltas) sum to exactly the arithmetic total once the
// writers are joined — striping spreads contention but never loses or
// double-counts an increment.
TEST(ShardedCounter, ConcurrentAddsSumExactly) {
  constexpr unsigned kThreads = 8, kAdds = 10000;
  ShardedCounter C;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != kThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I != kAdds; ++I)
        C.add(1 + (T + I) % 3);
    });
  for (auto &Thr : Threads)
    Thr.join();
  uint64_t Expected = 0;
  for (unsigned T = 0; T != kThreads; ++T)
    for (unsigned I = 0; I != kAdds; ++I)
      Expected += 1 + (T + I) % 3;
  EXPECT_EQ(C.sum(), Expected);
}

// Thread ordinals are stable within a thread and distinct enough that a
// fresh thread gets a fresh ordinal (the property Profile's stripe
// assignment shares).
TEST(ShardedCounter, ThreadStripeIsStablePerThread) {
  unsigned Here1 = ShardedCounter::threadStripe();
  unsigned Here2 = ShardedCounter::threadStripe();
  EXPECT_EQ(Here1, Here2);
  unsigned There = 0;
  std::thread([&] { There = ShardedCounter::threadStripe(); }).join();
  EXPECT_NE(Here1, There);
}

} // namespace
