//===- tests/verifier_test.cpp - Tamper-rejection tests -------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adversarial in-memory IR: start from a valid module and apply the
/// mutations a malicious producer would love — references that escape the
/// dominance region, operands from the wrong type plane, unchecked memory
/// designators, safety-minting casts, phi arity lies. Every one must be
/// rejected. (The wire format cannot even express most of these; these
/// tests pin down the verifier as an independent line of defense.)
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Src) {
  auto P = compileMJ("verif.mj", Src);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  TSAVerifier V(*P->TSA);
  EXPECT_TRUE(V.verify()) << "baseline module must verify";
  return P;
}

TSAMethod *methodNamed(TSAModule &M, const std::string &Name) {
  for (const auto &F : M.Methods)
    if (F->Symbol->Name == Name)
      return F.get();
  return nullptr;
}

Instruction *findOp(TSAMethod &M, Opcode Op, unsigned Skip = 0) {
  Instruction *Found = nullptr;
  M.forEachInstruction([&](const Instruction &I) {
    if (I.Op == Op && !Found) {
      if (Skip == 0)
        Found = const_cast<Instruction *>(&I);
      else
        --Skip;
    }
  });
  return Found;
}

void expectReject(TSAModule &M, const std::string &Needle) {
  TSAVerifier V(M);
  EXPECT_FALSE(V.verify()) << "tampered module must not verify";
  bool Found = false;
  for (const std::string &E : V.getErrors())
    if (E.find(Needle) != std::string::npos)
      Found = true;
  EXPECT_TRUE(Found) << "wanted error containing '" << Needle << "', got:\n"
                     << (V.getErrors().empty() ? "(none)"
                                               : V.getErrors().front());
}

const char *LoopSrc =
    "class C { int v; "
    "  static int f(int n, C c) { int s = 0; "
    "    for (int i = 0; i < n; i++) { s = s + c.v + i; } "
    "    if (s > 10) s = s - 10; "
    "    return s; } "
    "  static void main() { IO.printInt(f(3, new C())); } }";

//===----------------------------------------------------------------------===//
// Referential integrity
//===----------------------------------------------------------------------===//

TEST(Verifier, UseBeforeDefInSameBlockRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  // Find a block with two same-plane instructions and swap an operand to
  // reference a LATER instruction.
  bool Tampered = false;
  for (auto &BB : F->Blocks) {
    for (size_t I = 0; I + 1 < BB->Insts.size() && !Tampered; ++I) {
      Instruction *Early = BB->Insts[I];
      if (Early->isPhi())
        continue; // Loop-carried phi references are legal SSA.
      for (size_t J = I + 1; J < BB->Insts.size() && !Tampered; ++J) {
        Instruction *Late = BB->Insts[J];
        if (Late->isPhi())
          continue;
        for (Instruction *&Op : Early->Operands)
          if (Op->OpType == Late->OpType && Late->hasResult() &&
              Op->Op == Late->Op) {
            Op = Late;
            Tampered = true;
            break;
          }
      }
    }
  }
  if (!Tampered)
    GTEST_SKIP() << "no suitable instruction pair";
  TSAVerifier V(*P->TSA);
  EXPECT_FALSE(V.verify());
}

TEST(Verifier, CrossBranchReferenceRejected) {
  // A value computed in the then-arm referenced from the else-arm: the
  // exact attack of paper Figure 1/2 ("instruction (13) references
  // instruction (10) while the program takes the path through (11)").
  auto P = compile(
      "class A { static int f(boolean b, int x) { int r = 0; "
      "if (b) { r = x * 3; } else { r = x * 5; } return r; } "
      "static void main() { IO.printInt(f(true, 2)); } }");
  TSAMethod *F = methodNamed(*P->TSA, "f");
  // Blocks are in pre-order: find the two sibling arm blocks (same idom,
  // both with instructions) and make the later one reference the earlier.
  auto HasPhi = [](const BasicBlock &BB) {
    for (const auto &I : BB.Insts)
      if (I->isPhi())
        return true;
    return false;
  };
  BasicBlock *Then = nullptr, *Else = nullptr;
  for (auto &BB : F->Blocks)
    for (auto &BB2 : F->Blocks)
      if (BB->IDom && BB->IDom == BB2->IDom && BB->Id < BB2->Id &&
          !BB->Insts.empty() && !BB2->Insts.empty() && !HasPhi(*BB) &&
          !HasPhi(*BB2) && !BasicBlock::dominates(BB, BB2)) {
        Then = BB;
        Else = BB2;
      }
  ASSERT_NE(Then, nullptr);
  ASSERT_NE(Else, nullptr);
  Instruction *Stolen = nullptr;
  for (auto &I : Then->Insts)
    if (!I->isPhi() && I->hasResult() && I->OpType && I->OpType->isInt())
      Stolen = I;
  ASSERT_NE(Stolen, nullptr);
  bool Tampered = false;
  for (auto &I : Else->Insts)
    for (Instruction *&Op : I->Operands)
      if (!Tampered && !I->isPhi() && Op->OpType && Op->OpType->isInt() &&
          Op->hasResult()) {
        Op = Stolen;
        Tampered = true;
      }
  ASSERT_TRUE(Tampered);
  expectReject(*P->TSA, "referential integrity");
}

TEST(Verifier, PhiOperandMustDominateItsEdge) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *Phi = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.isPhi() && I.OpType->isInt() && !Phi)
      Phi = const_cast<Instruction *>(&I);
  });
  ASSERT_NE(Phi, nullptr);
  // Point the phi's first (preheader) operand at an int value defined
  // inside the loop body — valid only along the back edge, not the entry
  // edge.
  Instruction *BodyValue = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::Primitive && I.Prim == PrimOp::AddI &&
        I.Parent->DomDepth > Phi->Parent->DomDepth && !BodyValue)
      BodyValue = const_cast<Instruction *>(&I);
  });
  if (!BodyValue)
    GTEST_SKIP();
  Phi->Operands[0] = BodyValue;
  TSAVerifier V(*P->TSA);
  EXPECT_FALSE(V.verify());
}

//===----------------------------------------------------------------------===//
// Type separation
//===----------------------------------------------------------------------===//

TEST(Verifier, IntOperandFromBooleanPlaneRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  // An integer add fed a boolean (comparison result).
  Instruction *Add = nullptr, *Bool = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::Primitive && I.Prim == PrimOp::AddI && !Add)
      Add = const_cast<Instruction *>(&I);
    if (I.Op == Opcode::Primitive && I.Prim == PrimOp::CmpLtI && !Bool)
      Bool = const_cast<Instruction *>(&I);
  });
  ASSERT_NE(Add, nullptr);
  ASSERT_NE(Bool, nullptr);
  Add->Operands[0] = Bool;
  expectReject(*P->TSA, "plane");
}

TEST(Verifier, MemoryOpFromUnsafePlaneRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *GF = findOp(*F, Opcode::GetField);
  ASSERT_NE(GF, nullptr);
  // Replace the safe-ref designator with the raw (unchecked) reference —
  // the nullcheck's own operand.
  Instruction *Check = GF->Operands[0];
  ASSERT_EQ(Check->Op, Opcode::NullCheck);
  GF->Operands[0] = Check->Operands[0];
  expectReject(*P->TSA, "plane");
}

TEST(Verifier, IndexCertificateForWrongArrayRejected) {
  auto P = compile(
      "class A { static int f(int[] a, int[] b, int i) { "
      "int x = a[i]; int y = b[0]; return x + y; } "
      "static void main() { IO.printInt(f(new int[3], new int[3], 1)); } }");
  TSAMethod *F = methodNamed(*P->TSA, "f");
  // Two geltelts with distinct arrays: splice a's certificate into b's
  // access.
  Instruction *G1 = findOp(*F, Opcode::GetElt, 0);
  Instruction *G2 = findOp(*F, Opcode::GetElt, 1);
  ASSERT_NE(G1, nullptr);
  ASSERT_NE(G2, nullptr);
  G2->Operands[1] = G1->Operands[1];
  expectReject(*P->TSA, "plane");
}

TEST(Verifier, PhiMixingPlanesRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *Phi = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.isPhi() && I.OpType->isInt() && !Phi)
      Phi = const_cast<Instruction *>(&I);
  });
  ASSERT_NE(Phi, nullptr);
  Instruction *Bool = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::Primitive && I.Prim == PrimOp::CmpLtI && !Bool)
      Bool = const_cast<Instruction *>(&I);
  });
  if (!Bool || !BasicBlock::dominates(Bool->Parent, Phi->Parent))
    GTEST_SKIP();
  Phi->Operands[1] = Bool;
  expectReject(*P->TSA, "plane");
}

//===----------------------------------------------------------------------===//
// Safety construction
//===----------------------------------------------------------------------===//

TEST(Verifier, DowncastCannotMintSafety) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *NC = findOp(*F, Opcode::NullCheck);
  ASSERT_NE(NC, nullptr);
  // Forge: replace the nullcheck with a downcast claiming ref -> safe-ref.
  NC->Op = Opcode::Downcast;
  NC->AuxType = NC->OpType;
  NC->SrcSafe = false;
  NC->DstSafe = true;
  expectReject(*P->TSA, "cannot introduce safety");
}

TEST(Verifier, DowncastMustWiden) {
  auto P = compile(
      "class B {} class A extends B { "
      "static Object f(A a) { return (Object) a; } "
      "static void main() { IO.printBool(f(new A()) != null); } }");
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *DC = findOp(*F, Opcode::Downcast);
  ASSERT_NE(DC, nullptr);
  // Flip source and target: Object -> A without a dynamic check.
  std::swap(DC->OpType, DC->AuxType);
  // Keep operand plane consistent with the flipped source so the ONLY
  // error is the narrowing itself.
  TSAVerifier V(*P->TSA);
  EXPECT_FALSE(V.verify());
}

TEST(Verifier, PrimitiveDivMustBeXPrimitive) {
  auto P = compile(
      "class A { static int f(int a, int b) { return a / b; } "
      "static void main() { IO.printInt(f(4, 2)); } }");
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *Div = findOp(*F, Opcode::XPrimitive);
  ASSERT_NE(Div, nullptr);
  Div->Op = Opcode::Primitive; // Claim divide cannot raise.
  expectReject(*P->TSA, "wrong primitive/xprimitive");
}

TEST(Verifier, PreloadOutsideEntryRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *Const = F->createInst(Opcode::Const);
  Const->C = ConstantValue::makeInt(7);
  Const->OpType = P->Types.getInt();
  // Push into a non-entry block.
  ASSERT_GT(F->Blocks.size(), 1u);
  F->Blocks[1]->append(Const);
  expectReject(*P->TSA, "outside of the entry block");
}

TEST(Verifier, ConstKindMismatchRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *C = findOp(*F, Opcode::Const);
  ASSERT_NE(C, nullptr);
  C->OpType = P->Types.getDouble(); // Int payload on the double plane.
  expectReject(*P->TSA, "constant kind");
}

TEST(Verifier, PhiArityLieRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *Phi = findOp(*F, Opcode::Phi);
  ASSERT_NE(Phi, nullptr);
  Phi->Operands.push_back(Phi->Operands[0]);
  expectReject(*P->TSA, "predecessor count");
}

TEST(Verifier, WrongOperandCountRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *Add = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::Primitive && primOpArity(I.Prim) == 2 && !Add)
      Add = const_cast<Instruction *>(&I);
  });
  ASSERT_NE(Add, nullptr);
  Add->Operands.pop_back();
  expectReject(*P->TSA, "operands");
}

TEST(Verifier, NewOfBuiltinRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *New = nullptr;
  // Inject `new Object` equivalent: retype an existing New.
  auto Main = methodNamed(*P->TSA, "main");
  Main->forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::New && !New)
      New = const_cast<Instruction *>(&I);
  });
  ASSERT_NE(New, nullptr);
  New->OpType = P->Types.getClass(P->Table->getObjectClass());
  expectReject(*P->TSA, "user class");
  (void)F;
}

//===----------------------------------------------------------------------===//
// CST structure
//===----------------------------------------------------------------------===//

TEST(Verifier, BreakOutsideLoopRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  CSTNode *Break = F->createNode();
  Break->K = CSTNode::Kind::Break;
  // Insert at top level, where no loop is active (after the first Basic
  // so the sequence still starts correctly).
  F->Root.insert(F->Root.end() - 1, Break);
  expectReject(*P->TSA, "outside of a loop");
}

TEST(Verifier, NonBooleanConditionRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *IntVal = findOp(*F, Opcode::Param);
  ASSERT_NE(IntVal, nullptr);
  std::function<CSTNode *(CSTSeq &)> FindIf =
      [&](CSTSeq &Seq) -> CSTNode * {
    for (auto &N : Seq) {
      if (N->K == CSTNode::Kind::If)
        return N;
      for (auto *Sub : {&N->Then, &N->Else, &N->Header, &N->Body})
        if (CSTNode *R = FindIf(*Sub))
          return R;
    }
    return nullptr;
  };
  CSTNode *If = FindIf(F->Root);
  ASSERT_NE(If, nullptr);
  If->Cond = IntVal;
  expectReject(*P->TSA, "boolean");
}

TEST(Verifier, ReturnValueOnWrongPlaneRejected) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  Instruction *Bool = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::Primitive && I.Prim == PrimOp::CmpLtI && !Bool)
      Bool = const_cast<Instruction *>(&I);
  });
  ASSERT_NE(Bool, nullptr);
  std::function<CSTNode *(CSTSeq &)> FindRet =
      [&](CSTSeq &Seq) -> CSTNode * {
    for (auto &N : Seq) {
      if (N->K == CSTNode::Kind::Return && N->RetVal)
        return N;
      for (auto *Sub : {&N->Then, &N->Else, &N->Header, &N->Body})
        if (CSTNode *R = FindRet(*Sub))
          return R;
    }
    return nullptr;
  };
  CSTNode *Ret = FindRet(F->Root);
  ASSERT_NE(Ret, nullptr);
  Ret->RetVal = Bool;
  expectReject(*P->TSA, "wrong plane");
}

//===----------------------------------------------------------------------===//
// Counter check agrees with the full verifier on valid modules
//===----------------------------------------------------------------------===//

TEST(Verifier, CounterCheckAcceptsValidModules) {
  auto P = compile(LoopSrc);
  EXPECT_TRUE(counterCheckModule(*P->TSA));
}

TEST(Verifier, CounterCheckRejectsForwardReference) {
  auto P = compile(LoopSrc);
  TSAMethod *F = methodNamed(*P->TSA, "f");
  // Make a loop-header phi reference the `s - 10` value computed in the
  // if-arm AFTER the loop — a block that dominates neither back edge.
  Instruction *Phi = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.isPhi() && I.OpType->isInt() && !Phi)
      Phi = const_cast<Instruction *>(&I);
  });
  Instruction *Sub = nullptr;
  F->forEachInstruction([&](const Instruction &I) {
    if (I.Op == Opcode::Primitive && I.Prim == PrimOp::SubI && !Sub)
      Sub = const_cast<Instruction *>(&I);
  });
  ASSERT_NE(Phi, nullptr);
  ASSERT_NE(Sub, nullptr);
  ASSERT_FALSE(BasicBlock::dominates(Sub->Parent, Phi->Parent));
  Phi->Operands[0] = Sub;
  bool FullOk = TSAVerifier(*P->TSA).verify();
  bool CounterOk = counterCheckModule(*P->TSA);
  EXPECT_FALSE(FullOk);
  EXPECT_FALSE(CounterOk);
}

} // namespace
