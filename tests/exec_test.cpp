//===- tests/exec_test.cpp - Runtime semantics & exceptions ---*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime exception semantics on both back ends: the dynamic checks that
/// SafeTSA makes explicit (null, bounds, casts, arithmetic) must trap with
/// the same exception on both representations — including after
/// producer-side optimization, which may remove *redundant* checks but
/// never a live one.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCInterp.h"
#include "driver/Compiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

struct Outcome {
  RuntimeError Err;
  std::string Output;
};

Outcome runTSA(const std::string &Src, bool Optimize) {
  auto P = compileMJ("exec.mj", Src);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  if (Optimize)
    optimizeModule(*P->TSA);
  Runtime RT(*P->Table);
  TSAInterpreter I(*P->TSA, RT);
  ExecResult R = I.runMain();
  return {R.Err, RT.getOutput()};
}

Outcome runPrepared(const std::string &Src, bool Optimize) {
  auto P = compileMJ("exec.mj", Src);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  if (Optimize)
    optimizeModule(*P->TSA);
  auto PM = prepareModule(*P->TSA);
  EXPECT_TRUE(PM) << "prepareModule failed";
  if (!PM)
    return {RuntimeError::Internal, "<prepare failed>"};
  Runtime RT(*P->Table);
  TSAExec X(*PM, RT);
  ExecResult R = X.runMain();
  return {R.Err, RT.getOutput()};
}

Outcome runBC(const std::string &Src) {
  auto P = compileMJ("exec.mj", Src, /*EmitTSA=*/false);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  BCCompiler BCC(P->Types, *P->Table);
  auto BC = BCC.compile(P->AST);
  Runtime RT(*P->Table);
  BCInterpreter I(*BC, RT, P->Types);
  ExecResult R = I.runMain();
  return {R.Err, RT.getOutput()};
}

/// Expects all five executions (TSA and prepared TSA, each plain and
/// optimized, plus bytecode) to trap with \p Expected after printing
/// \p Prefix.
void expectTrap(const std::string &Src, RuntimeError Expected,
                const std::string &Prefix = "") {
  for (bool Opt : {false, true}) {
    Outcome O = runTSA(Src, Opt);
    EXPECT_EQ(O.Err, Expected)
        << "TSA (opt=" << Opt << "): " << runtimeErrorName(O.Err);
    EXPECT_EQ(O.Output, Prefix);
    Outcome P = runPrepared(Src, Opt);
    EXPECT_EQ(P.Err, Expected)
        << "prepared (opt=" << Opt << "): " << runtimeErrorName(P.Err);
    EXPECT_EQ(P.Output, Prefix);
  }
  Outcome O = runBC(Src);
  EXPECT_EQ(O.Err, Expected) << "BC: " << runtimeErrorName(O.Err);
  EXPECT_EQ(O.Output, Prefix);
}

TEST(Exec, DivisionByZeroTraps) {
  expectTrap("class Main { static void main() { int z = 0; "
             "IO.printInt(1 / z); } }",
             RuntimeError::DivisionByZero);
}

TEST(Exec, RemainderByZeroTraps) {
  expectTrap("class Main { static void main() { int z = 0; "
             "IO.printInt(1 % z); } }",
             RuntimeError::DivisionByZero);
}

TEST(Exec, DoubleDivisionByZeroDoesNotTrap) {
  Outcome O = runTSA("class Main { static void main() { double z = 0.0; "
                     "IO.printBool(1.0 / z > 0.0); } }",
                     true);
  EXPECT_EQ(O.Err, RuntimeError::None);
  EXPECT_EQ(O.Output, "true"); // +inf
}

TEST(Exec, NullFieldAccessTraps) {
  expectTrap("class C { int x; } class Main { static void main() { "
             "C c = null; IO.printInt(c.x); } }",
             RuntimeError::NullPointer);
}

TEST(Exec, NullStoreTraps) {
  expectTrap("class C { int x; } class Main { static void main() { "
             "C c = null; c.x = 1; } }",
             RuntimeError::NullPointer);
}

TEST(Exec, NullCallTraps) {
  expectTrap("class C { void f() {} } class Main { static void main() { "
             "C c = null; c.f(); } }",
             RuntimeError::NullPointer);
}

TEST(Exec, NullArrayTraps) {
  expectTrap("class Main { static void main() { int[] a = null; "
             "IO.printInt(a[0]); } }",
             RuntimeError::NullPointer);
  expectTrap("class Main { static void main() { int[] a = null; "
             "IO.printInt(a.length); } }",
             RuntimeError::NullPointer);
}

TEST(Exec, BoundsTrapsBothEnds) {
  expectTrap("class Main { static void main() { int[] a = new int[3]; "
             "IO.printInt(a[3]); } }",
             RuntimeError::IndexOutOfBounds);
  expectTrap("class Main { static void main() { int[] a = new int[3]; "
             "int i = -1; a[i] = 0; } }",
             RuntimeError::IndexOutOfBounds);
}

TEST(Exec, TrapHappensAfterEarlierOutput) {
  expectTrap("class Main { static void main() { int[] a = new int[2]; "
             "IO.printInt(a.length); IO.printInt(a[5]); } }",
             RuntimeError::IndexOutOfBounds, "2");
}

TEST(Exec, BadDowncastTraps) {
  expectTrap("class A {} class B extends A {} class C extends A {} "
             "class Main { static void main() { A a = new C(); "
             "B b = (B) a; } }",
             RuntimeError::ClassCast);
}

TEST(Exec, NullCastSucceeds) {
  Outcome O = runTSA("class A {} class B extends A { } "
                     "class Main { static void main() { A a = null; "
                     "B b = (B) a; IO.printBool(b == null); } }",
                     true);
  EXPECT_EQ(O.Err, RuntimeError::None);
  EXPECT_EQ(O.Output, "true");
}

TEST(Exec, NegativeArraySizeTraps) {
  expectTrap("class Main { static void main() { int n = -2; "
             "int[] a = new int[n]; } }",
             RuntimeError::NegativeArraySize);
}

TEST(Exec, UnboundedRecursionOverflows) {
  expectTrap("class Main { static int f(int n) { return f(n + 1); } "
             "static void main() { IO.printInt(f(0)); } }",
             RuntimeError::StackOverflow);
}

TEST(Exec, FuelBoundsInfiniteLoops) {
  auto P = compileMJ("exec.mj", "class Main { static void main() { "
                                "while (true) { } } }");
  ASSERT_TRUE(P->ok());
  Runtime RT(*P->Table, /*Fuel=*/10'000);
  TSAInterpreter I(*P->TSA, RT);
  EXPECT_EQ(I.runMain().Err, RuntimeError::OutOfFuel);
}

TEST(Exec, CheckOrderNullBeforeBounds) {
  // A null array must trap NullPointer, not bounds, even with a bad index.
  expectTrap("class Main { static void main() { int[] a = null; int i = "
             "-5; IO.printInt(a[i]); } }",
             RuntimeError::NullPointer);
}

TEST(Exec, RedundantCheckRemovalKeepsFirstTrap) {
  // Both accesses are out of bounds; optimization may unify the checks
  // but the program must still trap before the second print.
  expectTrap("class Main { static void main() { int[] a = new int[1]; "
             "int i = 3; IO.printInt(7); IO.printInt(a[i]); "
             "IO.printInt(a[i]); } }",
             RuntimeError::IndexOutOfBounds, "7");
}

TEST(Exec, NativeMathMethods) {
  Outcome O = runTSA(
      "class Main { static void main() { "
      "IO.printDouble(Math.sqrt(6.25)); IO.printChar(' '); "
      "IO.printDouble(Math.abs(-2.5)); IO.printChar(' '); "
      "IO.printInt(Math.abs(-7)); IO.printChar(' '); "
      "IO.printInt(Math.min(3, 4) + Math.max(3, 4)); IO.printChar(' '); "
      "IO.printDouble(Math.pow(2.0, 10.0)); IO.printChar(' '); "
      "IO.printDouble(Math.floor(3.7)); } }",
      true);
  EXPECT_EQ(O.Err, RuntimeError::None);
  EXPECT_EQ(O.Output, "2.5 2.5 7 7 1024 3");
}

TEST(Exec, MathOverloadByArgumentType) {
  // Math.abs resolves to the int overload for ints, double for doubles.
  Outcome O = runTSA("class Main { static void main() { "
                     "IO.printInt(Math.abs(-3)); "
                     "IO.printDouble(Math.abs(-3.5)); } }",
                     true);
  EXPECT_EQ(O.Output, "33.5");
}

TEST(Exec, ValueRendering) {
  EXPECT_EQ(Value::makeInt(-42).str(), "-42");
  EXPECT_EQ(Value::makeBool(true).str(), "true");
  EXPECT_EQ(Value::makeChar('x').str(), "x");
  EXPECT_EQ(Value::makeNull().str(), "null");
  EXPECT_EQ(Value::makeDouble(2.5).str(), "2.5");
}

TEST(Exec, HeapCellsAndStatics) {
  TypeContext Types;
  ClassTable Table(Types);
  Runtime RT(Table);
  uint32_t S = RT.internString("hi", Types.getChar());
  EXPECT_EQ(RT.internString("hi", Types.getChar()), S)
      << "string constants are interned";
  EXPECT_EQ(RT.cell(S).Slots.size(), 2u);
  uint32_t A = RT.allocArray(Types.getInt(), 4);
  EXPECT_EQ(RT.cell(A).Slots.size(), 4u);
  EXPECT_EQ(RT.cell(A).Slots[3].I, 0);
}

} // namespace
