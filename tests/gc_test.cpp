//===- tests/gc_test.cpp - Precise GC correctness -------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Correctness proofs for the precise mark-sweep heap (src/gc, DESIGN.md
/// §13): allocation-churn stays bounded under StressEveryNAllocs=1, the
/// full exec corpus (all tiers, traps, try/catch) behaves identically
/// with GC stressed vs. disabled, a forced collection retains exactly
/// the reachable set (checked against an independent test-side
/// reachability walk), cell 0 is never handed out, free-list reuse keeps
/// indices stable, paranoid mode traps on dead refs, and 8 threads
/// executing a shared served module with stress GC stay clean (run under
/// TSan via gc_test_tsan, ASan via gc_test_asan).
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"
#include "serve/CodeClient.h"
#include "serve/CodeServer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>

using namespace safetsa;

namespace {

GcOptions stressGc() {
  GcOptions G;
  G.StressEveryNAllocs = 1;
  return G;
}

GcOptions disabledGc() {
  GcOptions G;
  G.Disable = true;
  return G;
}

struct Outcome {
  RuntimeError Err = RuntimeError::None;
  std::string Output;
};

Outcome runTreeWalk(const TSAModule &M, ClassTable &Table,
                    const GcOptions &G) {
  Runtime RT(Table, 200'000'000, G);
  TSAInterpreter I(M, RT);
  ExecResult R = I.runMain();
  return {R.Err, RT.getOutput()};
}

Outcome runTier(const TSAModule &M, ClassTable &Table, uint32_t Tier,
                const GcOptions &G) {
  auto T0 = prepareModule(M);
  EXPECT_TRUE(T0) << "prepareModule failed";
  if (!T0)
    return {RuntimeError::Internal, ""};
  const PreparedModule *PM = T0.get();
  std::unique_ptr<PreparedModule> T1;
  if (Tier == 1) {
    // Profile with GC disabled (the baseline), then re-quicken; the
    // GC-stressed run below executes the identical tier-1 streams.
    Runtime ProfRT(Table);
    TSAExec Warm(*T0, ProfRT);
    Warm.runMain();
    T1 = reprepareModule(*T0);
    EXPECT_TRUE(T1) << "reprepareModule failed";
    if (!T1)
      return {RuntimeError::Internal, ""};
    PM = T1.get();
  }
  Runtime RT(Table, 200'000'000, G);
  TSAExec X(*PM, RT);
  ExecResult R = X.runMain();
  return {R.Err, RT.getOutput()};
}

/// Core differential: for one module, every engine (tree-walk, tier 0,
/// tier 1) must produce byte-identical output and the same trap kind
/// with a collection after every allocation as with GC off entirely.
void expectGcParity(const TSAModule &M, ClassTable &Table,
                    const char *Label) {
  Outcome TwOff = runTreeWalk(M, Table, disabledGc());
  Outcome TwOn = runTreeWalk(M, Table, stressGc());
  EXPECT_EQ(TwOn.Err, TwOff.Err) << Label << ": tree-walk trap diverged";
  EXPECT_EQ(TwOn.Output, TwOff.Output)
      << Label << ": tree-walk output diverged under stress GC";
  for (uint32_t Tier = 0; Tier != 2; ++Tier) {
    Outcome Off = runTier(M, Table, Tier, disabledGc());
    Outcome On = runTier(M, Table, Tier, stressGc());
    EXPECT_EQ(On.Err, Off.Err)
        << Label << ": tier " << Tier << " trap diverged";
    EXPECT_EQ(On.Output, Off.Output)
        << Label << ": tier " << Tier << " output diverged under stress GC";
    EXPECT_EQ(Off.Err, TwOff.Err) << Label << ": tier vs tree-walk trap";
    EXPECT_EQ(Off.Output, TwOff.Output)
        << Label << ": tier vs tree-walk output";
  }
}

void expectSourceGcParity(const std::string &Src) {
  auto C = compileMJ("gc.mj", Src);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  expectGcParity(*C->TSA, *C->Table, "gc-parity");
}

//===----------------------------------------------------------------------===//
// Corpus-wide parity: stress GC vs. disabled across every engine.
//===----------------------------------------------------------------------===//

class GcCorpusTest : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(GcCorpusTest, StressedRunMatchesGcOff) {
  expectSourceGcParity(GetParam().Source);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GcCorpusTest, ::testing::ValuesIn(getCorpus()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Name);
    });

// Traps and try/catch under stress: collections between the faulting
// allocation sites must not move the trap point or the caught value.
TEST(GcParity, TrapsAndTryCatch) {
  expectSourceGcParity(
      "class Node { int v; Node next; } class Main { static void main() { "
      "Node head = null; int i = 0; "
      "while (i < 50) { Node n = new Node(); n.v = i; n.next = head; "
      "head = n; i = i + 1; } "
      "Node bad = null; IO.printInt(head.v); IO.printInt(bad.v); } }");
  expectSourceGcParity(
      "class Main { static void main() { int i = 0; int s = 0; "
      "while (i < 40) { try { int[] a = new int[i % 5]; s = s + a[i % 7]; } "
      "catch { s = s + 1000; } i = i + 1; } IO.printInt(s); } }");
  expectSourceGcParity(
      "class C { int x; } class Main { static void main() { int i = 0; "
      "while (i < 30) { try { C c = null; if (i % 2 == 0) { c = new C(); } "
      "c.x = i; IO.printInt(c.x); } catch { IO.printChar('!'); } "
      "i = i + 1; } } }");
}

//===----------------------------------------------------------------------===//
// Bounded churn: a loop that allocates and drops garbage every iteration
// must not grow the heap under StressEveryNAllocs=1.
//===----------------------------------------------------------------------===//

const char *kChurnSrc =
    "class Box { int v; int[] payload; } "
    "class Main { static int work(int i) { "
    "Box b = new Box(); b.v = i; b.payload = new int[8]; "
    "b.payload[3] = i * 2; return b.v + b.payload[3]; } "
    "static void main() { int i = 0; int s = 0; "
    "while (i < 2000) { s = s + work(i); i = i + 1; } "
    "IO.printInt(s); } }";

TEST(GcStress, HeapStaysBoundedUnderChurn) {
  auto C = compileMJ("churn.mj", kChurnSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto PM = prepareModule(*C->TSA);
  ASSERT_TRUE(PM);
  Runtime RT(*C->Table, 200'000'000, stressGc());
  TSAExec X(*PM, RT);
  ExecResult R = X.runMain();
  ASSERT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
  // 2000 iterations x 2 cells each; with a collection after every
  // allocation the cell vector must stay at a handful of live cells plus
  // the in-flight allocation window, not grow with the iteration count.
  EXPECT_LT(RT.heapCells(), 64u) << "heap grew despite stress collection";
  EXPECT_GT(RT.gcStats().Cycles, 1000u);
  EXPECT_GT(RT.gcStats().CellsReclaimed, 3000u);
  // Sanity: GC off on the same workload really does grow the heap, so
  // the bound above is meaningful.
  Runtime Grow(*C->Table, 200'000'000, disabledGc());
  TSAExec XG(*PM, Grow);
  ASSERT_EQ(XG.runMain().Err, RuntimeError::None);
  EXPECT_GT(Grow.heapCells(), 2000u);
  EXPECT_EQ(Grow.getOutput(), RT.getOutput());
}

TEST(GcStress, TreeWalkHeapStaysBounded) {
  auto C = compileMJ("churn.mj", kChurnSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  Runtime RT(*C->Table, 200'000'000, stressGc());
  TSAInterpreter I(*C->TSA, RT);
  ASSERT_EQ(I.runMain().Err, RuntimeError::None);
  EXPECT_LT(RT.heapCells(), 64u);
  EXPECT_GT(RT.gcStats().Cycles, 1000u);
}

//===----------------------------------------------------------------------===//
// Reachability: after a forced collection with no frames live, the
// retained set must equal an independent walk from statics + interned
// strings — exactly the unreachable cells were reclaimed, no more, no
// less.
//===----------------------------------------------------------------------===//

TEST(GcReachability, LiveCellsMatchOracleReachableSet) {
  // main() leaves a static list of 10 nodes (each with an 8-elt array)
  // plus a static string, and makes plenty of garbage on the way.
  auto C = compileMJ(
      "reach.mj",
      "class Node { int v; Node next; int[] data; } "
      "class Main { static Node keep; "
      "static void main() { int i = 0; "
      "while (i < 10) { Node n = new Node(); n.data = new int[8]; "
      "n.v = i; n.next = keep; keep = n; i = i + 1; } "
      "i = 0; while (i < 500) { Node junk = new Node(); "
      "junk.data = new int[3]; i = i + 1; } "
      "IO.printStr(\"done\"); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto PM = prepareModule(*C->TSA);
  ASSERT_TRUE(PM);
  Runtime RT(*C->Table); // Default options: budget never trips here.
  TSAExec X(*PM, RT);
  ASSERT_EQ(X.runMain().Err, RuntimeError::None);
  EXPECT_EQ(RT.getOutput(), "done");

  size_t Before = RT.gcLiveCells();
  uint64_t Reclaimed = RT.collectNow();
  EXPECT_GT(Reclaimed, 0u);
  EXPECT_EQ(RT.gcLiveCells(), Before - Reclaimed);

  // Independent reachability walk over the same roots the collector
  // enumerates once frames are gone: statics and the string pool.
  std::vector<uint32_t> Work;
  std::set<uint32_t> Reachable;
  auto Push = [&](uint32_t Ref) {
    if (Ref != 0 && Reachable.insert(Ref).second)
      Work.push_back(Ref);
  };
  ClassTable &Table = RT.getTable();
  for (unsigned S = 0; S != Table.getNumStaticSlots(); ++S) {
    Value V = RT.getStatic(S);
    if (V.K == Value::Kind::Ref)
      Push(V.R);
  }
  for (const auto &[Str, Ref] : RT.stringPool())
    Push(Ref);
  while (!Work.empty()) {
    uint32_t Ref = Work.back();
    Work.pop_back();
    for (const Value &V : RT.cell(Ref).Slots)
      if (V.K == Value::Kind::Ref)
        Push(V.R);
  }
  // 10 nodes + 10 arrays via Main.keep, + the interned "done".
  EXPECT_EQ(Reachable.size(), 21u);
  EXPECT_EQ(RT.gcLiveCells(), Reachable.size());

  // A second forced collection reclaims nothing: the live set is stable.
  EXPECT_EQ(RT.collectNow(), 0u);
  EXPECT_EQ(RT.gcLiveCells(), Reachable.size());
}

//===----------------------------------------------------------------------===//
// Null-slot convention and free-list reuse.
//===----------------------------------------------------------------------===//

TEST(GcHeapInvariants, CellZeroIsNeverHandedOut) {
  auto C = compileMJ("null.mj",
                     "class C { int x; } "
                     "class Main { static void main() { } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  ClassTable &Table = *C->Table;
  const ClassSymbol *Cls = nullptr;
  for (const auto &Sym : Table.getClasses())
    if (Sym->Name == "C")
      Cls = Sym.get();
  ASSERT_NE(Cls, nullptr);

  Runtime RT(Table, 200'000'000, stressGc());
  Type *CharTy = C->TSA->Types->getChar();
  // Fresh allocations, swept-and-recycled allocations, and interned
  // strings must all avoid index 0 — ref 0 stays the null reference.
  for (int Round = 0; Round != 3; ++Round) {
    for (int I = 0; I != 100; ++I) {
      EXPECT_NE(RT.allocObject(Cls), 0u);
      EXPECT_NE(RT.allocArray(CharTy, 4), 0u);
    }
    EXPECT_NE(RT.internString("s" + std::to_string(Round), CharTy), 0u);
    RT.collectNow(); // Everything unrooted dies; indices recycle.
  }
}

TEST(GcHeapInvariants, NullRefAccessTrapsNotUB) {
  // Field and element access through null must raise NullPointer — the
  // trap, not a read of cell 0 — on every engine, stressed or not.
  expectSourceGcParity(
      "class C { int x; } class Main { static void main() { "
      "C c = null; IO.printInt(c.x); } }");
  expectSourceGcParity(
      "class Main { static void main() { "
      "int[] a = null; IO.printInt(a[0]); } }");
  auto C = compileMJ("nulltrap.mj",
                     "class C { int x; } class Main { static void main() { "
                     "C c = null; IO.printInt(c.x); } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  Outcome O = runTreeWalk(*C->TSA, *C->Table, stressGc());
  EXPECT_EQ(O.Err, RuntimeError::NullPointer);
}

TEST(GcHeapInvariants, FreeListReusesIndicesWithoutGrowth) {
  auto C = compileMJ("reuse.mj", "class C { int x; } "
                                 "class Main { static void main() { } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  ClassTable &Table = *C->Table;
  const ClassSymbol *Cls = nullptr;
  for (const auto &Sym : Table.getClasses())
    if (Sym->Name == "C")
      Cls = Sym.get();
  ASSERT_NE(Cls, nullptr);

  Runtime RT(Table);
  uint32_t First = RT.allocObject(Cls);
  size_t CellsAfterFirst = RT.heapCells();
  ASSERT_EQ(RT.collectNow(), 1u); // Unrooted: swept.
  // The recycled allocation reuses the swept index; the vector does not
  // grow, and the non-moving discipline means the index is bit-identical.
  uint32_t Second = RT.allocObject(Cls);
  EXPECT_EQ(Second, First);
  EXPECT_EQ(RT.heapCells(), CellsAfterFirst);
}

TEST(GcHeapInvariants, DisabledGcNeverCollects) {
  auto C = compileMJ("off.mj", "class C { int x; } "
                               "class Main { static void main() { } }");
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  const ClassSymbol *Cls = nullptr;
  for (const auto &Sym : C->Table->getClasses())
    if (Sym->Name == "C")
      Cls = Sym.get();
  ASSERT_NE(Cls, nullptr);
  GcOptions G = stressGc();
  G.Disable = true;
  Runtime RT(*C->Table, 200'000'000, G);
  for (int I = 0; I != 50; ++I)
    RT.allocObject(Cls);
  EXPECT_FALSE(RT.gcPending());
  EXPECT_EQ(RT.collectNow(), 0u);
  EXPECT_EQ(RT.gcStats().Cycles, 0u);
  EXPECT_EQ(RT.heapCells(), 51u); // 50 + the null cell: grow-only.
}

//===----------------------------------------------------------------------===//
// Paranoid mode: a dead (swept) ref read through cell() aborts instead
// of silently returning recycled memory.
//===----------------------------------------------------------------------===//

TEST(GcParanoidDeathTest, DeadRefTrapsUnderParanoid) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        setenv("SAFETSA_PARANOID", "1", 1);
        auto C = compileMJ("paranoid.mj",
                           "class C { int x; } "
                           "class Main { static void main() { } }");
        const ClassSymbol *Cls = nullptr;
        for (const auto &Sym : C->Table->getClasses())
          if (Sym->Name == "C")
            Cls = Sym.get();
        Runtime RT(*C->Table);
        uint32_t Ref = RT.allocObject(Cls);
        RT.collectNow(); // Unrooted: Ref is now dead.
        RT.cell(Ref);    // Paranoid trap: abort, not recycled memory.
      },
      "PARANOID heap trap");
}

//===----------------------------------------------------------------------===//
// Concurrency: 8 threads execute one served module, each with its own
// stress-collected Runtime. Safepoint polls, striped GC counters, and
// the shared PreparedModule must stay race-free (gc_test_tsan).
//===----------------------------------------------------------------------===//

TEST(GcConcurrency, EightThreadServeStormWithStressGc) {
  CodeServerOptions Opts;
  Opts.Gc = stressGc();
  CodeServer Server(Opts);
  std::string Err;
  auto Prog = compileMJ("storm.mj", kChurnSrc);
  ASSERT_TRUE(Prog->ok()) << Prog->renderDiagnostics();
  std::vector<uint8_t> Wire = encodeModule(*Prog->TSA);
  Digest D = Server.publish(ByteSpan(Wire), &Err);
  ASSERT_TRUE(Err.empty()) << Err;
  auto Unit = Server.load(D, &Err);
  ASSERT_TRUE(Unit) << Err;
  auto PM = Server.loadPrepared(D, &Err);
  ASSERT_TRUE(PM) << Err;

  uint64_t CyclesBefore = gcCounters().Cycles.sum();
  constexpr unsigned kThreads = 8;
  std::vector<std::thread> Threads;
  std::atomic<unsigned> Failures{0};
  std::string Expected;
  {
    Runtime RT(*Unit->Table, 200'000'000, disabledGc());
    TSAExec X(*PM, RT);
    ASSERT_EQ(X.runMain().Err, RuntimeError::None);
    Expected = RT.getOutput();
  }
  for (unsigned T = 0; T != kThreads; ++T)
    Threads.emplace_back([&] {
      // Per-thread Runtime under the server's GC policy; the prepared
      // module is shared and const.
      Runtime RT(*Unit->Table, 200'000'000, Opts.Gc);
      TSAExec X(*PM, RT);
      ExecResult R = X.runMain();
      if (R.Err != RuntimeError::None || RT.getOutput() != Expected ||
          RT.gcStats().Cycles == 0 || RT.heapCells() > 64)
        ++Failures;
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);

  // Every thread's collections landed in the process-wide striped
  // aggregate, and the STATS verb reports them.
  uint64_t CyclesNow = gcCounters().Cycles.sum();
  EXPECT_GE(CyclesNow - CyclesBefore, kThreads);
  ServeStats S = Server.stats();
  EXPECT_GE(S.GcCycles, CyclesNow);
  EXPECT_GT(S.GcCellsReclaimed, 0u);
}

} // namespace
