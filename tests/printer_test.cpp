//===- tests/printer_test.cpp - Dump/driver surface tests -----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "tsa/Printer.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

TEST(Printer, ShowsPaperNotation) {
  auto P = compileMJ("p.mj",
                     "class C { int v; } "
                     "class Main { static int f(C c, int i) { "
                     "int[] a = new int[4]; "
                     "while (i < a.length) { a[i] = c.v; i = i + 1; } "
                     "return i + a[0]; } "
                     "static void main() { IO.printInt(f(new C(), 1)); } }");
  ASSERT_TRUE(P->ok());
  std::string Dump = printModule(*P->TSA);
  // Register planes with ascending fill.
  EXPECT_NE(Dump.find("int[0] <-"), std::string::npos);
  // Safe planes from checks.
  EXPECT_NE(Dump.find("safe-C[0] <- nullcheck C"), std::string::npos);
  EXPECT_NE(Dump.find("safe-index-int[]"), std::string::npos);
  // (l-r) operand pairs.
  EXPECT_NE(Dump.find("(0-0)"), std::string::npos);
  EXPECT_NE(Dump.find("(1-"), std::string::npos);
  // Structure comes from the CST.
  EXPECT_NE(Dump.find("loop header:"), std::string::npos);
  EXPECT_NE(Dump.find("while "), std::string::npos);
  EXPECT_NE(Dump.find("return"), std::string::npos);
  EXPECT_NE(Dump.find("phi"), std::string::npos);
}

TEST(Printer, ShowsTryStructure) {
  auto P = compileMJ("p.mj",
                     "class Main { static void main() { int z = 0; "
                     "try { IO.printInt(1 / z); } "
                     "catch { IO.printInt(2); } } }");
  ASSERT_TRUE(P->ok());
  std::string Dump = printModule(*P->TSA);
  EXPECT_NE(Dump.find("try"), std::string::npos);
  EXPECT_NE(Dump.find("catch"), std::string::npos);
  EXPECT_NE(Dump.find("xcall IO.printInt(int)"), std::string::npos);
  EXPECT_NE(Dump.find("xprimitive int div"), std::string::npos);
}

TEST(Printer, EveryCorpusProgramDumpsCleanly) {
  for (const CorpusProgram &Prog : getCorpus()) {
    auto P = compileMJ(Prog.Name, Prog.Source);
    ASSERT_TRUE(P->ok()) << Prog.Name;
    std::string Dump = printModule(*P->TSA);
    EXPECT_GT(Dump.size(), 500u) << Prog.Name;
    EXPECT_EQ(Dump.find("(?)"), std::string::npos)
        << Prog.Name << ": dangling reference in dump";
  }
}

TEST(Driver, FindMain) {
  auto P = compileMJ("p.mj", "class A { static void main() {} }");
  ASSERT_TRUE(P->ok());
  ASSERT_NE(P->findMain(), nullptr);
  EXPECT_EQ(P->findMain()->Name, "main");

  auto NoMain = compileMJ("p.mj", "class A { static void main(int x) {} }");
  ASSERT_TRUE(NoMain->ok());
  EXPECT_EQ(NoMain->findMain(), nullptr);
}

TEST(Driver, DiagnosticsRenderWithContext) {
  auto P = compileMJ("broken.mj", "class A { void f() { return 1; } }");
  EXPECT_FALSE(P->ok());
  std::string Out = P->renderDiagnostics();
  EXPECT_NE(Out.find("broken.mj:1:"), std::string::npos);
  EXPECT_NE(Out.find("void method cannot return"), std::string::npos);
  EXPECT_NE(Out.find('^'), std::string::npos);
}

TEST(Driver, EmitTSAFalseSkipsGeneration) {
  auto P = compileMJ("p.mj", "class A { static void main() {} }",
                     /*EmitTSA=*/false);
  EXPECT_TRUE(P->ok());
  EXPECT_EQ(P->TSA, nullptr);
  EXPECT_NE(P->Table, nullptr);
}

TEST(Driver, ASTDumpIsStable) {
  auto P = compileMJ("p.mj",
                     "class A { int x; int f(int a) { "
                     "if (a > 0) return a * x; return -a; } }",
                     /*EmitTSA=*/false);
  ASSERT_TRUE(P->ok());
  std::string Dump = dumpAST(P->AST);
  EXPECT_NE(Dump.find("class A"), std::string::npos);
  EXPECT_NE(Dump.find("method int f(int a)"), std::string::npos);
  EXPECT_NE(Dump.find("(a > 0)"), std::string::npos);
  EXPECT_NE(Dump.find("return (a * x)"), std::string::npos);
}

} // namespace
