//===- tests/codec_test.cpp - Wire-format tests ---------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encode/decode round trips, structural fidelity, and hostile-input
/// robustness: random mutations and truncations of wire images must never
/// crash the decoder and never produce an unverifiable module.
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

#include <random>

using namespace safetsa;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Src) {
  auto P = compileMJ("codec.mj", Src);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  return P;
}

std::string runDecoded(const DecodedUnit &Unit) {
  Runtime RT(*Unit.Table);
  TSAInterpreter I(*Unit.Module, RT);
  ExecResult R = I.runMain();
  EXPECT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
  return RT.getOutput();
}

const char *DemoSrc =
    "class Pair { int a; int b; Pair(int x, int y) { a = x; b = y; } "
    "  int sum() { return a + b; } } "
    "class Main { static double half = 0.5; "
    "  static void main() { Pair p = new Pair(3, 4); "
    "    int[] xs = new int[4]; "
    "    for (int i = 0; i < xs.length; i++) xs[i] = p.sum() * i; "
    "    IO.printInt(xs[3]); IO.printDouble(half); "
    "    IO.printStr(\"ok\"); } }";

TEST(Codec, RoundTripPreservesStructureAndBehaviour) {
  auto P = compile(DemoSrc);
  unsigned Insts = P->TSA->countInstructions();
  unsigned Phis = P->TSA->countOpcode(Opcode::Phi);
  unsigned Checks = P->TSA->countOpcode(Opcode::NullCheck);

  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::string Err;
  auto Unit = decodeModule(Wire, &Err);
  ASSERT_TRUE(Unit) << Err;

  EXPECT_EQ(Unit->Module->countInstructions(), Insts);
  EXPECT_EQ(Unit->Module->countOpcode(Opcode::Phi), Phis);
  EXPECT_EQ(Unit->Module->countOpcode(Opcode::NullCheck), Checks);
  EXPECT_EQ(Unit->Module->Methods.size(), P->TSA->Methods.size());

  TSAVerifier V(*Unit->Module);
  EXPECT_TRUE(V.verify());
  EXPECT_EQ(runDecoded(*Unit), "210.5ok");
}

TEST(Codec, EncodingIsDeterministic) {
  auto P1 = compile(DemoSrc);
  auto P2 = compile(DemoSrc);
  EXPECT_EQ(encodeModule(*P1->TSA), encodeModule(*P2->TSA));
}

TEST(Codec, ReEncodingDecodedModuleIsStable) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire1 = encodeModule(*P->TSA);
  std::string Err;
  auto Unit = decodeModule(Wire1, &Err);
  ASSERT_TRUE(Unit) << Err;
  std::vector<uint8_t> Wire2 = encodeModule(*Unit->Module);
  EXPECT_EQ(Wire1, Wire2) << "decode/encode must be a fixpoint";
}

TEST(Codec, DecodedTableRebuildsLayoutsAndVTables) {
  auto P = compile(
      "class A { int x; int f() { return 1; } } "
      "class B extends A { int y; int f() { return 2; } "
      "int g() { return 3; } } "
      "class Main { static void main() { A a = new B(); "
      "IO.printInt(a.f()); } }");
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::string Err;
  auto Unit = decodeModule(Wire, &Err);
  ASSERT_TRUE(Unit) << Err;
  ClassSymbol *B = Unit->Table->lookup("B");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->InstanceLayout.size(), 2u);
  EXPECT_EQ(B->VTable.size(), 2u);
  EXPECT_EQ(B->VTable[0]->Owner, B) << "override installed in slot 0";
  EXPECT_EQ(runDecoded(*Unit), "2");
}

TEST(Codec, StaticInitsSurviveTheTrip) {
  auto P = compile(
      "class K { static int a = 41; static char c = 'z'; "
      "static double d = 1.25; static boolean b = true; } "
      "class Main { static void main() { IO.printInt(K.a); "
      "IO.printChar(K.c); IO.printDouble(K.d); IO.printBool(K.b); } }");
  auto Unit = decodeModule(encodeModule(*P->TSA), nullptr);
  ASSERT_TRUE(Unit);
  EXPECT_EQ(runDecoded(*Unit), "41z1.25true");
}

TEST(Codec, OptimizedModulesRoundTrip) {
  for (const CorpusProgram &Prog :
       {*findCorpusProgram("BitSieve"), *findCorpusProgram("Parser")}) {
    auto P = compile(Prog.Source);
    optimizeModule(*P->TSA);
    std::string Err;
    auto Unit = decodeModule(encodeModule(*P->TSA), &Err);
    ASSERT_TRUE(Unit) << Err;
    TSAVerifier V(*Unit->Module);
    EXPECT_TRUE(V.verify());
  }
}

TEST(Codec, PrefixModeIsSmallerThanNaive) {
  auto P = compile(DemoSrc);
  size_t Prefix = encodeModule(*P->TSA, CodecMode::Prefix).size();
  size_t Naive = encodeModule(*P->TSA, CodecMode::Naive).size();
  EXPECT_LT(Prefix, Naive);
}

//===----------------------------------------------------------------------===//
// Hostile inputs
//===----------------------------------------------------------------------===//

TEST(Codec, RejectsGarbageAndEmpty) {
  std::string Err;
  EXPECT_EQ(decodeModule({}, &Err), nullptr);
  EXPECT_EQ(decodeModule({0x00}, &Err), nullptr);
  std::vector<uint8_t> Junk(256, 0xA5);
  EXPECT_EQ(decodeModule(Junk, &Err), nullptr);
}

TEST(Codec, RejectsWrongMagicOrVersion) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  {
    std::vector<uint8_t> Bad = Wire;
    Bad[0] ^= 0xff;
    std::string Err;
    EXPECT_EQ(decodeModule(Bad, &Err), nullptr);
    EXPECT_EQ(Err, "bad magic");
  }
  {
    std::vector<uint8_t> Bad = Wire;
    Bad[4] ^= 0xff; // Version field (little-end bit order in stream).
    std::string Err;
    EXPECT_EQ(decodeModule(Bad, &Err), nullptr);
  }
}

TEST(Codec, TruncationAtEveryLengthIsHandled) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  for (size_t Len = 0; Len < Wire.size(); ++Len) {
    std::vector<uint8_t> Cut(Wire.begin(), Wire.begin() + Len);
    std::string Err;
    auto Unit = decodeModule(Cut, &Err);
    if (Unit) {
      // Decoding may succeed if the tail was padding; the module must
      // still verify.
      TSAVerifier V(*Unit->Module);
      EXPECT_TRUE(V.verify()) << "truncated-at-" << Len;
    }
  }
}

/// Random multi-byte corruption; parameterized by seed.
class CodecFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodecFuzz, MutatedImagesNeverYieldUnsafeModules) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 300; ++Round) {
    std::vector<uint8_t> Evil = Wire;
    unsigned Mutations = 1 + Rng() % 8;
    for (unsigned I = 0; I != Mutations; ++I) {
      size_t Pos = Rng() % Evil.size();
      Evil[Pos] = static_cast<uint8_t>(Rng());
    }
    std::string Err;
    auto Unit = decodeModule(Evil, &Err);
    if (!Unit)
      continue; // Rejected: fine.
    TSAVerifier V(*Unit->Module);
    EXPECT_TRUE(V.verify())
        << "decoder accepted a module the verifier rejects (seed "
        << GetParam() << ", round " << Round << "): "
        << (V.getErrors().empty() ? "" : V.getErrors().front());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(100u, 112u));

} // namespace
