//===- tests/codec_test.cpp - Wire-format tests ---------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encode/decode round trips, structural fidelity, and hostile-input
/// robustness: random mutations and truncations of wire images must never
/// crash the decoder and never produce an unverifiable module.
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

#include <random>

using namespace safetsa;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Src) {
  auto P = compileMJ("codec.mj", Src);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  return P;
}

std::string runDecoded(const DecodedUnit &Unit) {
  Runtime RT(*Unit.Table);
  TSAInterpreter I(*Unit.Module, RT);
  ExecResult R = I.runMain();
  EXPECT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
  return RT.getOutput();
}

const char *DemoSrc =
    "class Pair { int a; int b; Pair(int x, int y) { a = x; b = y; } "
    "  int sum() { return a + b; } } "
    "class Main { static double half = 0.5; "
    "  static void main() { Pair p = new Pair(3, 4); "
    "    int[] xs = new int[4]; "
    "    for (int i = 0; i < xs.length; i++) xs[i] = p.sum() * i; "
    "    IO.printInt(xs[3]); IO.printDouble(half); "
    "    IO.printStr(\"ok\"); } }";

TEST(Codec, RoundTripPreservesStructureAndBehaviour) {
  auto P = compile(DemoSrc);
  unsigned Insts = P->TSA->countInstructions();
  unsigned Phis = P->TSA->countOpcode(Opcode::Phi);
  unsigned Checks = P->TSA->countOpcode(Opcode::NullCheck);

  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::string Err;
  auto Unit = decodeModule(Wire, &Err);
  ASSERT_TRUE(Unit) << Err;

  EXPECT_EQ(Unit->Module->countInstructions(), Insts);
  EXPECT_EQ(Unit->Module->countOpcode(Opcode::Phi), Phis);
  EXPECT_EQ(Unit->Module->countOpcode(Opcode::NullCheck), Checks);
  EXPECT_EQ(Unit->Module->Methods.size(), P->TSA->Methods.size());

  TSAVerifier V(*Unit->Module);
  EXPECT_TRUE(V.verify());
  EXPECT_EQ(runDecoded(*Unit), "210.5ok");
}

TEST(Codec, EncodingIsDeterministic) {
  auto P1 = compile(DemoSrc);
  auto P2 = compile(DemoSrc);
  EXPECT_EQ(encodeModule(*P1->TSA), encodeModule(*P2->TSA));
}

TEST(Codec, ReEncodingDecodedModuleIsStable) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire1 = encodeModule(*P->TSA);
  std::string Err;
  auto Unit = decodeModule(Wire1, &Err);
  ASSERT_TRUE(Unit) << Err;
  std::vector<uint8_t> Wire2 = encodeModule(*Unit->Module);
  EXPECT_EQ(Wire1, Wire2) << "decode/encode must be a fixpoint";
}

TEST(Codec, DecodedTableRebuildsLayoutsAndVTables) {
  auto P = compile(
      "class A { int x; int f() { return 1; } } "
      "class B extends A { int y; int f() { return 2; } "
      "int g() { return 3; } } "
      "class Main { static void main() { A a = new B(); "
      "IO.printInt(a.f()); } }");
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::string Err;
  auto Unit = decodeModule(Wire, &Err);
  ASSERT_TRUE(Unit) << Err;
  ClassSymbol *B = Unit->Table->lookup("B");
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->InstanceLayout.size(), 2u);
  EXPECT_EQ(B->VTable.size(), 2u);
  EXPECT_EQ(B->VTable[0]->Owner, B) << "override installed in slot 0";
  EXPECT_EQ(runDecoded(*Unit), "2");
}

TEST(Codec, StaticInitsSurviveTheTrip) {
  auto P = compile(
      "class K { static int a = 41; static char c = 'z'; "
      "static double d = 1.25; static boolean b = true; } "
      "class Main { static void main() { IO.printInt(K.a); "
      "IO.printChar(K.c); IO.printDouble(K.d); IO.printBool(K.b); } }");
  auto Unit = decodeModule(encodeModule(*P->TSA), nullptr);
  ASSERT_TRUE(Unit);
  EXPECT_EQ(runDecoded(*Unit), "41z1.25true");
}

TEST(Codec, OptimizedModulesRoundTrip) {
  for (const CorpusProgram &Prog :
       {*findCorpusProgram("BitSieve"), *findCorpusProgram("Parser")}) {
    auto P = compile(Prog.Source);
    optimizeModule(*P->TSA);
    std::string Err;
    auto Unit = decodeModule(encodeModule(*P->TSA), &Err);
    ASSERT_TRUE(Unit) << Err;
    TSAVerifier V(*Unit->Module);
    EXPECT_TRUE(V.verify());
  }
}

TEST(Codec, PrefixModeIsSmallerThanNaive) {
  auto P = compile(DemoSrc);
  size_t Prefix = encodeModule(*P->TSA, CodecMode::Prefix).size();
  size_t Naive = encodeModule(*P->TSA, CodecMode::Naive).size();
  EXPECT_LT(Prefix, Naive);
}

//===----------------------------------------------------------------------===//
// Hostile inputs
//===----------------------------------------------------------------------===//

TEST(Codec, RejectsGarbageAndEmpty) {
  std::string Err;
  EXPECT_EQ(decodeModule({}, &Err), nullptr);
  EXPECT_EQ(decodeModule({0x00}, &Err), nullptr);
  std::vector<uint8_t> Junk(256, 0xA5);
  EXPECT_EQ(decodeModule(Junk, &Err), nullptr);
}

TEST(Codec, RejectsWrongMagicOrVersion) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  {
    std::vector<uint8_t> Bad = Wire;
    Bad[0] ^= 0xff;
    std::string Err;
    EXPECT_EQ(decodeModule(Bad, &Err), nullptr);
    EXPECT_EQ(Err, "bad magic");
  }
  {
    std::vector<uint8_t> Bad = Wire;
    Bad[4] ^= 0xff; // Version field (little-end bit order in stream).
    std::string Err;
    EXPECT_EQ(decodeModule(Bad, &Err), nullptr);
  }
}

TEST(Codec, TruncationAtEveryLengthIsHandled) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  for (size_t Len = 0; Len < Wire.size(); ++Len) {
    std::vector<uint8_t> Cut(Wire.begin(), Wire.begin() + Len);
    std::string Err;
    auto Unit = decodeModule(Cut, &Err);
    if (Unit) {
      // Decoding may succeed if the tail was padding; the module must
      // still verify.
      TSAVerifier V(*Unit->Module);
      EXPECT_TRUE(V.verify()) << "truncated-at-" << Len;
    }
  }
}

// Negative-path table: every hostile stream shape must be rejected
// *cleanly* — a typed (non-empty, human-readable) error, identical
// verdicts from the table-driven and scalar bit readers, and no
// allocation sized by attacker-controlled length fields. The last
// property is what the _asan variant of this test proves: a decoder
// that reserved `claimed count` elements up front would trip the
// sanitizer allocator long before the plausibility check fired.
TEST(CodecNegative, HostileStreamTableFailsCleanly) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  ASSERT_GT(Wire.size(), 16u);

  struct Case {
    std::string Name;
    std::vector<uint8_t> Bytes;
  };
  std::vector<Case> Cases;

  // Truncations at structurally interesting lengths: inside the magic,
  // right after the 6-byte header, mid-class-section, mid-bodies, and
  // one byte short of complete.
  for (size_t Len : {size_t(3), size_t(6), size_t(7), Wire.size() / 4,
                     Wire.size() / 2, Wire.size() - 1})
    Cases.push_back({"truncated-at-" + std::to_string(Len),
                     {Wire.begin(), Wire.begin() + long(Len)}});

  // Oversized length fields: stomp the bytes right after the header
  // (where the class-section counts live) with 0xFF so every varuint
  // reads as an enormous claimed count.
  for (size_t Stomp : {size_t(1), size_t(4), size_t(8)}) {
    Case C{"oversized-counts-" + std::to_string(Stomp), Wire};
    for (size_t I = 0; I != Stomp && 6 + I < C.Bytes.size(); ++I)
      C.Bytes[6 + I] = 0xFF;
    Cases.push_back(std::move(C));
  }
  // A header followed by nothing but 0xFF: maximal counts everywhere,
  // at every nesting level the decoder reaches.
  {
    Case C{"header-plus-ff", {Wire.begin(), Wire.begin() + 6}};
    C.Bytes.insert(C.Bytes.end(), 64, 0xFF);
    Cases.push_back(std::move(C));
  }

  for (const Case &C : Cases) {
    for (bool Table : {true, false}) {
      DecodeOptions DO;
      DO.TableDecode = Table;
      std::string Err;
      auto Unit = decodeModule(ByteSpan(C.Bytes), &Err, DO);
      if (Unit) {
        // A tail-only stomp can land in padding; the module must then be
        // fully intact (fused decode == verified) and re-encode stably.
        EXPECT_EQ(encodeModule(*Unit->Module),
                  encodeModule(*Unit->Module))
            << C.Name;
        continue;
      }
      EXPECT_FALSE(Err.empty())
          << C.Name << ": rejected without a typed error";
    }
    // Both readers must agree on the verdict (accept xor typed reject).
    std::string E1, E2;
    DecodeOptions Scalar;
    Scalar.TableDecode = false;
    bool A1 = decodeModule(ByteSpan(C.Bytes), &E1, DecodeOptions{}) != nullptr;
    bool A2 = decodeModule(ByteSpan(C.Bytes), &E2, Scalar) != nullptr;
    EXPECT_EQ(A1, A2) << C.Name << ": table=" << A1 << " scalar=" << A2;
  }
}

// Trailing garbage after a complete module: the decoder stops at the
// end of the symbol stream, so appended bytes either land in ignored
// padding (the module must be byte-identical on re-encode) or break
// framing with a typed error. Never a crash, never a different module.
TEST(CodecNegative, TrailingGarbageNeverChangesTheModule) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::mt19937 Rng(424242);
  for (unsigned N : {1u, 2u, 8u, 64u, 4096u}) {
    std::vector<uint8_t> M = Wire;
    for (unsigned I = 0; I != N; ++I)
      M.push_back(static_cast<uint8_t>(Rng()));
    std::string Err;
    auto Unit = decodeModule(ByteSpan(M), &Err, DecodeOptions{});
    if (!Unit) {
      EXPECT_FALSE(Err.empty()) << "garbage+" << N;
      continue;
    }
    EXPECT_EQ(encodeModule(*Unit->Module), Wire)
        << "garbage+" << N << ": trailing bytes leaked into the module";
  }
}

/// Random multi-byte corruption; parameterized by seed.
class CodecFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(CodecFuzz, MutatedImagesNeverYieldUnsafeModules) {
  auto P = compile(DemoSrc);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::mt19937 Rng(GetParam());
  for (int Round = 0; Round < 300; ++Round) {
    std::vector<uint8_t> Evil = Wire;
    unsigned Mutations = 1 + Rng() % 8;
    for (unsigned I = 0; I != Mutations; ++I) {
      size_t Pos = Rng() % Evil.size();
      Evil[Pos] = static_cast<uint8_t>(Rng());
    }
    std::string Err;
    auto Unit = decodeModule(Evil, &Err);
    if (!Unit)
      continue; // Rejected: fine.
    TSAVerifier V(*Unit->Module);
    EXPECT_TRUE(V.verify())
        << "decoder accepted a module the verifier rejects (seed "
        << GetParam() << ", round " << Round << "): "
        << (V.getErrors().empty() ? "" : V.getErrors().front());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range(100u, 112u));

} // namespace
