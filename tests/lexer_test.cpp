//===- tests/lexer_test.cpp - Lexer tests ---------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

std::vector<Token> lex(const std::string &Src, bool ExpectErrors = false) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  std::vector<Token> Tokens = L.lexAll();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.render(nullptr);
  return Tokens;
}

std::vector<TokenKind> kindsOf(const std::string &Src) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : lex(Src))
    Kinds.push_back(T.Kind);
  return Kinds;
}

TEST(Lexer, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Eof);
}

TEST(Lexer, Keywords) {
  auto Kinds = kindsOf("class extends static final void int boolean double "
                       "char if else while do for return break continue new "
                       "this null true false instanceof");
  std::vector<TokenKind> Expected = {
      TokenKind::KwClass,    TokenKind::KwExtends, TokenKind::KwStatic,
      TokenKind::KwFinal,    TokenKind::KwVoid,    TokenKind::KwInt,
      TokenKind::KwBoolean,  TokenKind::KwDouble,  TokenKind::KwChar,
      TokenKind::KwIf,       TokenKind::KwElse,    TokenKind::KwWhile,
      TokenKind::KwDo,       TokenKind::KwFor,     TokenKind::KwReturn,
      TokenKind::KwBreak,    TokenKind::KwContinue, TokenKind::KwNew,
      TokenKind::KwThis,     TokenKind::KwNull,    TokenKind::KwTrue,
      TokenKind::KwFalse,    TokenKind::KwInstanceof, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, IdentifiersAreNotKeywords) {
  auto Tokens = lex("classy _if For intx");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "classy");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Identifier);
}

TEST(Lexer, IntLiterals) {
  auto Tokens = lex("0 42 2147483647 0x1f 0xFF");
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 2147483647);
  EXPECT_EQ(Tokens[3].IntValue, 31);
  EXPECT_EQ(Tokens[4].IntValue, 255);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::IntLiteral);
}

TEST(Lexer, IntLiteralOverflowRejected) {
  lex("2147483649", /*ExpectErrors=*/true);
}

TEST(Lexer, MinIntMagnitudeAccepted) {
  // 2147483648 is allowed so that -2147483648 parses (Java-style rule).
  auto Tokens = lex("2147483648");
  EXPECT_EQ(Tokens[0].IntValue, 2147483648LL);
}

TEST(Lexer, DoubleLiterals) {
  auto Tokens = lex("1.5 0.25 2e3 1.5e-2 7E+1");
  EXPECT_DOUBLE_EQ(Tokens[0].DoubleValue, 1.5);
  EXPECT_DOUBLE_EQ(Tokens[1].DoubleValue, 0.25);
  EXPECT_DOUBLE_EQ(Tokens[2].DoubleValue, 2000.0);
  EXPECT_DOUBLE_EQ(Tokens[3].DoubleValue, 0.015);
  EXPECT_DOUBLE_EQ(Tokens[4].DoubleValue, 70.0);
  for (int I = 0; I < 5; ++I)
    EXPECT_EQ(Tokens[I].Kind, TokenKind::DoubleLiteral);
}

TEST(Lexer, DotWithoutDigitsIsMemberAccess) {
  auto Kinds = kindsOf("a.length");
  std::vector<TokenKind> Expected = {TokenKind::Identifier, TokenKind::Dot,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, TrailingEIsIdentifier) {
  // `2e` is the number 2 followed by identifier e, not a malformed float.
  auto Tokens = lex("2e");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
}

TEST(Lexer, CharLiterals) {
  auto Tokens = lex(R"('a' ' ' '\n' '\t' '\\' '\'' '\0')");
  EXPECT_EQ(Tokens[0].IntValue, 'a');
  EXPECT_EQ(Tokens[1].IntValue, ' ');
  EXPECT_EQ(Tokens[2].IntValue, '\n');
  EXPECT_EQ(Tokens[3].IntValue, '\t');
  EXPECT_EQ(Tokens[4].IntValue, '\\');
  EXPECT_EQ(Tokens[5].IntValue, '\'');
  EXPECT_EQ(Tokens[6].IntValue, 0);
}

TEST(Lexer, StringLiterals) {
  auto Tokens = lex(R"("hello" "" "a\"b" "line\n")");
  EXPECT_EQ(Tokens[0].StringValue, "hello");
  EXPECT_EQ(Tokens[1].StringValue, "");
  EXPECT_EQ(Tokens[2].StringValue, "a\"b");
  EXPECT_EQ(Tokens[3].StringValue, "line\n");
}

TEST(Lexer, UnterminatedString) {
  lex("\"abc", /*ExpectErrors=*/true);
}

TEST(Lexer, UnterminatedChar) {
  lex("'a", /*ExpectErrors=*/true);
}

TEST(Lexer, EmptyChar) {
  lex("''", /*ExpectErrors=*/true);
}

TEST(Lexer, BadEscape) {
  lex(R"('\q')", /*ExpectErrors=*/true);
}

TEST(Lexer, Operators) {
  auto Kinds = kindsOf("+ - * / % ! ~ < > <= >= == != && || & | ^ << >> "
                       "++ -- += -= *= /= %= =");
  std::vector<TokenKind> Expected = {
      TokenKind::Plus,        TokenKind::Minus,
      TokenKind::Star,        TokenKind::Slash,
      TokenKind::Percent,     TokenKind::Not,
      TokenKind::Tilde,       TokenKind::Less,
      TokenKind::Greater,     TokenKind::LessEqual,
      TokenKind::GreaterEqual, TokenKind::EqualEqual,
      TokenKind::NotEqual,    TokenKind::AmpAmp,
      TokenKind::PipePipe,    TokenKind::Amp,
      TokenKind::Pipe,        TokenKind::Caret,
      TokenKind::Shl,         TokenKind::Shr,
      TokenKind::PlusPlus,    TokenKind::MinusMinus,
      TokenKind::PlusAssign,  TokenKind::MinusAssign,
      TokenKind::StarAssign,  TokenKind::SlashAssign,
      TokenKind::PercentAssign, TokenKind::Assign,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, MaximalMunch) {
  // `a+++b` lexes as a ++ + b, like Java.
  auto Kinds = kindsOf("a+++b");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::PlusPlus, TokenKind::Plus,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, LineComments) {
  auto Kinds = kindsOf("a // rest of line ignored ++ \nb");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, BlockComments) {
  auto Kinds = kindsOf("a /* multi \n line * comment */ b");
  std::vector<TokenKind> Expected = {TokenKind::Identifier,
                                     TokenKind::Identifier, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, UnterminatedBlockComment) {
  lex("a /* never ends", /*ExpectErrors=*/true);
}

TEST(Lexer, InvalidCharacter) {
  auto Tokens = lex("a @ b", /*ExpectErrors=*/true);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Unknown);
}

TEST(Lexer, TokenLocations) {
  auto Tokens = lex("ab  cd\nef");
  EXPECT_EQ(Tokens[0].Loc.Offset, 0u);
  EXPECT_EQ(Tokens[1].Loc.Offset, 4u);
  EXPECT_EQ(Tokens[2].Loc.Offset, 7u);
}

} // namespace
