//===- tests/exec_prepared_test.cpp - Prepared-exec parity ----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential proof for the quickened execution units: every corpus
/// program (plus the runtime-error and try/catch cases) must behave
/// identically under the prepared register-frame interpreter (TSAExec)
/// and the definitional tree-walker (TSAInterpreter) — same printed
/// output, same trap kind, and the same trap *point* (everything printed
/// before the trap must match, not just the checksum). Also proves that
/// one PreparedModule is safely shared across threads (run under TSan via
/// exec_prepared_tsan) and that the built-in TreeWalkOracle agrees.
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

using namespace safetsa;

namespace {

struct Outcome {
  RuntimeError Err = RuntimeError::None;
  std::string Output;
};

Outcome runTreeWalk(const TSAModule &M, ClassTable &Table) {
  Runtime RT(Table);
  TSAInterpreter I(M, RT);
  ExecResult R = I.runMain();
  return {R.Err, RT.getOutput()};
}

Outcome runPrepared(const TSAModule &M, ClassTable &Table) {
  auto PM = prepareModule(M);
  EXPECT_TRUE(PM) << "prepareModule failed";
  if (!PM)
    return {RuntimeError::Internal, "<prepare failed>"};
  Runtime RT(Table);
  TSAExec X(*PM, RT);
  ExecResult R = X.runMain();
  return {R.Err, RT.getOutput()};
}

/// Both interpreters on the same module: identical trap kind and output.
void expectParity(const TSAModule &M, ClassTable &Table,
                  const char *Label) {
  Outcome T = runTreeWalk(M, Table);
  Outcome P = runPrepared(M, Table);
  EXPECT_EQ(P.Err, T.Err) << Label << ": prepared trapped "
                          << runtimeErrorName(P.Err) << ", tree-walk "
                          << runtimeErrorName(T.Err);
  EXPECT_EQ(P.Output, T.Output) << Label << ": output diverged";
}

/// Source-level parity: unoptimized, optimized, and after a wire round
/// trip into a fresh class table (the consumer-side module a server
/// would actually prepare).
void expectSourceParity(const std::string &Src) {
  auto C = compileMJ("prep.mj", Src);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  expectParity(*C->TSA, *C->Table, "unoptimized");

  {
    std::string Err;
    auto Unit = decodeModule(encodeModule(*C->TSA), &Err);
    ASSERT_TRUE(Unit) << Err;
    expectParity(*Unit->Module, *Unit->Table, "decoded");
  }

  optimizeModule(*C->TSA);
  expectParity(*C->TSA, *C->Table, "optimized");
}

//===----------------------------------------------------------------------===//
// Corpus differential
//===----------------------------------------------------------------------===//

class PreparedCorpusTest : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(PreparedCorpusTest, MatchesTreeWalk) {
  expectSourceParity(GetParam().Source);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, PreparedCorpusTest, ::testing::ValuesIn(getCorpus()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Trap-point parity: the runtime-error programs must trap with the same
// exception after the same partial output on both interpreters.
//===----------------------------------------------------------------------===//

void expectTrapParity(const std::string &Src, RuntimeError Expected) {
  auto C = compileMJ("trap.mj", Src);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  Outcome T = runTreeWalk(*C->TSA, *C->Table);
  EXPECT_EQ(T.Err, Expected) << "tree-walk: " << runtimeErrorName(T.Err);
  expectParity(*C->TSA, *C->Table, "trap");
  optimizeModule(*C->TSA);
  expectParity(*C->TSA, *C->Table, "trap (optimized)");
}

TEST(PreparedTraps, NullPointer) {
  expectTrapParity("class C { int x; } class Main { static void main() { "
                   "IO.printInt(3); C c = null; IO.printInt(c.x); } }",
                   RuntimeError::NullPointer);
}

TEST(PreparedTraps, IndexOutOfBounds) {
  expectTrapParity("class Main { static void main() { int[] a = new int[3]; "
                   "IO.printInt(a.length); IO.printInt(a[7]); } }",
                   RuntimeError::IndexOutOfBounds);
}

TEST(PreparedTraps, DivisionByZero) {
  expectTrapParity("class Main { static void main() { int z = 0; "
                   "IO.printInt(9); IO.printInt(1 / z); } }",
                   RuntimeError::DivisionByZero);
}

TEST(PreparedTraps, RemainderByZero) {
  expectTrapParity("class Main { static void main() { int z = 0; "
                   "IO.printInt(1 % z); } }",
                   RuntimeError::DivisionByZero);
}

TEST(PreparedTraps, ClassCast) {
  expectTrapParity("class A {} class B extends A {} class C extends A {} "
                   "class Main { static void main() { A a = new C(); "
                   "IO.printInt(1); B b = (B) a; } }",
                   RuntimeError::ClassCast);
}

TEST(PreparedTraps, NegativeArraySize) {
  expectTrapParity("class Main { static void main() { int n = -2; "
                   "int[] a = new int[n]; } }",
                   RuntimeError::NegativeArraySize);
}

TEST(PreparedTraps, StackOverflow) {
  expectTrapParity("class Main { static int f(int n) { return f(n + 1); } "
                   "static void main() { IO.printInt(f(0)); } }",
                   RuntimeError::StackOverflow);
}

TEST(PreparedTraps, TrapInsideLoopKeepsPartialOutput) {
  expectTrapParity("class Main { static void main() { int[] a = new int[4]; "
                   "int i = 0; while (i < 10) { IO.printInt(a[i]); "
                   "i = i + 1; } } }",
                   RuntimeError::IndexOutOfBounds);
}

TEST(PreparedTraps, CalleeTrapUnwindsThroughCaller) {
  expectTrapParity("class Main { static int f(int[] a, int i) { "
                   "return a[i]; } static void main() { "
                   "int[] a = new int[2]; IO.printInt(f(a, 1)); "
                   "IO.printInt(f(a, 5)); } }",
                   RuntimeError::IndexOutOfBounds);
}

//===----------------------------------------------------------------------===//
// Try/catch parity: exception edges and handler phis.
//===----------------------------------------------------------------------===//

TEST(PreparedTryCatch, CatchesDivisionByZero) {
  expectSourceParity("class Main { static void main() { int z = 0; int r; "
                     "try { r = 10 / z; } catch { r = -1; } "
                     "IO.printInt(r); } }");
}

TEST(PreparedTryCatch, DistinctRaiseSitesYieldDistinctStates) {
  for (int Which = 0; Which != 3; ++Which) {
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "class Main { static void main() { int z = 0; int[] a = new int[2]; "
        "int s = 0; try { s = 1; if (%d == 0) { s = s + 10 / z; } "
        "s = 2; if (%d == 1) { s = s + a[9]; } s = 3; "
        "if (%d == 2) { s = s + 10 / z; } s = 4; } catch { s = s + 100; } "
        "IO.printInt(s); } }",
        Which, Which, Which);
    expectSourceParity(Buf);
  }
}

TEST(PreparedTryCatch, ExceptionsUnwindOutOfCallees) {
  expectSourceParity("class Main { "
                     "static int f(int z) { return 10 / z; } "
                     "static void main() { int r; "
                     "try { r = f(0); } catch { r = -7; } "
                     "IO.printInt(r); } }");
}

TEST(PreparedTryCatch, NestedTryInnermostWins) {
  expectSourceParity("class Main { static void main() { int z = 0; int r = 0; "
                     "try { try { r = 10 / z; } catch { r = 1; } "
                     "r = r + 10 / z; } catch { r = r + 10; } "
                     "IO.printInt(r); } }");
}

TEST(PreparedTryCatch, TryInsideLoopWithBreakAndContinue) {
  expectSourceParity(
      "class Main { static void main() { int z = 0; int i = 0; int s = 0; "
      "while (i < 6) { i = i + 1; try { if (i == 2) { continue; } "
      "if (i == 5) { break; } s = s + 10 / (i - 3); } "
      "catch { s = s + 1000; } } IO.printInt(s); IO.printInt(i); } }");
}

TEST(PreparedTryCatch, LoopInsideTry) {
  expectSourceParity(
      "class Main { static void main() { int[] a = new int[3]; int s = 0; "
      "try { int i = 0; while (i < 10) { s = s + a[i] + i; i = i + 1; } } "
      "catch { s = s + 500; } IO.printInt(s); } }");
}

TEST(PreparedTryCatch, ReturnInsideTryAndHandler) {
  expectSourceParity("class Main { static int f(int z) { "
                     "try { return 10 / z; } catch { return -1; } } "
                     "static void main() { IO.printInt(f(0)); "
                     "IO.printInt(f(5)); } }");
}

TEST(PreparedTryCatch, UncaughtErrorKindsUnwind) {
  // StackOverflow is not catchable; must unwind identically.
  expectTrapParity("class Main { static int f(int n) { int r; "
                   "try { r = f(n + 1); } catch { r = -1; } return r; } "
                   "static void main() { IO.printInt(f(0)); } }",
                   RuntimeError::StackOverflow);
}

//===----------------------------------------------------------------------===//
// Fuel, oracle, direct calls, concurrency
//===----------------------------------------------------------------------===//

TEST(PreparedExec, FuelBoundsInfiniteLoops) {
  auto C = compileMJ("fuel.mj", "class Main { static void main() { "
                                "while (true) { } } }");
  ASSERT_TRUE(C->ok());
  auto PM = prepareModule(*C->TSA);
  ASSERT_TRUE(PM);
  Runtime RT(*C->Table, /*Fuel=*/10'000);
  TSAExec X(*PM, RT);
  EXPECT_EQ(X.runMain().Err, RuntimeError::OutOfFuel);
}

TEST(PreparedExec, TreeWalkOracleAgrees) {
  auto C = compileMJ("oracle.mj",
                     "class Main { static int fib(int n) { "
                     "if (n < 2) { return n; } "
                     "return fib(n - 1) + fib(n - 2); } "
                     "static void main() { IO.printInt(fib(15)); } }");
  ASSERT_TRUE(C->ok());
  auto PM = prepareModule(*C->TSA);
  ASSERT_TRUE(PM);
  Runtime RT(*C->Table);
  ExecOptions Opts;
  Opts.TreeWalkOracle = true;
  TSAExec X(*PM, RT, Opts);
  ExecResult R = X.runMain();
  EXPECT_EQ(R.Err, RuntimeError::None);
  EXPECT_FALSE(X.oracleDiverged());
  EXPECT_EQ(RT.getOutput(), "610");
}

TEST(PreparedExec, DirectCallWithArguments) {
  auto C = compileMJ("call.mj",
                     "class Main { static int gcd(int a, int b) { "
                     "while (b != 0) { int t = a % b; a = b; b = t; } "
                     "return a; } static void main() { "
                     "IO.printInt(gcd(48, 36)); } }");
  ASSERT_TRUE(C->ok());
  auto PM = prepareModule(*C->TSA);
  ASSERT_TRUE(PM);
  const MethodSymbol *Gcd = nullptr;
  for (const auto &Class : C->Table->getClasses())
    for (const auto &M : Class->Methods)
      if (M->Name == "gcd")
        Gcd = M.get();
  ASSERT_NE(Gcd, nullptr);
  std::vector<Value> Args = {Value::makeInt(1071), Value::makeInt(462)};

  Runtime RTX(*C->Table);
  TSAExec X(*PM, RTX);
  ExecResult RP = X.call(Gcd, Args);
  ASSERT_TRUE(RP.ok());

  Runtime RTT(*C->Table);
  TSAInterpreter I(*C->TSA, RTT);
  ExecResult RT_ = I.call(Gcd, Args);
  ASSERT_TRUE(RT_.ok());
  EXPECT_EQ(RP.Ret.str(), RT_.Ret.str());
  EXPECT_EQ(RP.Ret.I, 21);
}

TEST(PreparedExec, OnePreparedModuleManyThreads) {
  // One immutable PreparedModule, one TSAExec + Runtime per thread: the
  // concurrency contract the serve layer relies on (TSan-checked via the
  // exec_prepared_tsan registration).
  const CorpusProgram *P = &getCorpus().front();
  auto C = compileMJ(P->Name, P->Source);
  ASSERT_TRUE(C->ok());
  auto PM = prepareModule(*C->TSA);
  ASSERT_TRUE(PM);
  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);

  constexpr unsigned NumThreads = 8;
  std::vector<std::string> Outs(NumThreads);
  std::vector<RuntimeError> Errs(NumThreads, RuntimeError::Internal);
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Runtime RT(*C->Table);
      TSAExec X(*PM, RT);
      ExecResult R = X.runMain();
      Errs[T] = R.Err;
      Outs[T] = RT.getOutput();
    });
  for (auto &Th : Threads)
    Th.join();
  for (unsigned T = 0; T != NumThreads; ++T) {
    EXPECT_EQ(Errs[T], Ref.Err);
    EXPECT_EQ(Outs[T], Ref.Output);
  }
}

TEST(PreparedExec, PreparedFormIsCompact) {
  // Structural sanity: every corpus method lowers, slots are dense, and
  // the prepared stream is linear (no graph left to chase at run time).
  for (const CorpusProgram &P : getCorpus()) {
    auto C = compileMJ(P.Name, P.Source);
    ASSERT_TRUE(C->ok());
    auto PM = prepareModule(*C->TSA);
    ASSERT_TRUE(PM) << P.Name;
    EXPECT_EQ(PM->Units.size(), C->TSA->Methods.size());
    EXPECT_GT(PM->totalCode(), 0u);
    EXPECT_NE(PM->MainUnit, nullptr);
    for (const auto &U : PM->Units) {
      EXPECT_GE(U->NumSlots, U->NumArgs);
      for (const ExecInst &In : U->Code) {
        if (In.Dst != ExecInst::NoSlot) {
          EXPECT_LT(In.Dst, U->NumSlots);
        }
        if (In.Op == XOp::Jmp || In.Op == XOp::BrFalse) {
          EXPECT_LT(static_cast<size_t>(In.X), U->Code.size());
        }
        if (In.Handler >= 0) {
          EXPECT_LT(static_cast<size_t>(In.Handler), U->Code.size());
        }
      }
    }
  }
}

} // namespace
