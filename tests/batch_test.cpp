//===- tests/batch_test.cpp - Parallel batch determinism ------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch pipeline's contract: running the whole corpus through
/// BatchCompiler produces encodings byte-identical to the sequential
/// compileMJ + encodeModule path, for every thread count and both codec
/// modes, with the consumer side (decode + verify) succeeding for every
/// unit. Run under TSan (SAFETSA_SANITIZE=thread) this also proves the
/// pool and the per-unit pipeline share no racy state.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/BatchCompiler.h"
#include "opt/Optimizer.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

using namespace safetsa;

namespace {

std::vector<BatchJob> corpusJobs() {
  std::vector<BatchJob> Jobs;
  for (const CorpusProgram &P : getCorpus())
    Jobs.push_back({P.Name, P.Source});
  return Jobs;
}

/// Sequential reference encodings for one configuration.
std::vector<std::vector<uint8_t>> sequentialWires(CodecMode Mode,
                                                  bool Optimize) {
  std::vector<std::vector<uint8_t>> Wires;
  for (const CorpusProgram &P : getCorpus()) {
    auto C = compileMJ(P.Name, P.Source);
    EXPECT_TRUE(C->ok()) << P.Name;
    if (Optimize)
      optimizeModule(*C->TSA);
    Wires.push_back(encodeModule(*C->TSA, Mode));
  }
  return Wires;
}

class BatchDeterminism
    : public testing::TestWithParam<std::tuple<unsigned, CodecMode>> {};

TEST_P(BatchDeterminism, MatchesSequentialPipeline) {
  auto [Threads, Mode] = GetParam();

  BatchOptions Opts;
  Opts.Threads = Threads;
  Opts.Mode = Mode;
  BatchCompiler BC(Opts);
  std::vector<BatchResult> Results = BC.run(corpusJobs());

  std::vector<std::vector<uint8_t>> Expected =
      sequentialWires(Mode, /*Optimize=*/false);
  ASSERT_EQ(Results.size(), Expected.size());
  for (size_t I = 0; I != Results.size(); ++I) {
    const BatchResult &R = Results[I];
    EXPECT_TRUE(R.ok()) << R.Name << ": " << R.Error;
    EXPECT_TRUE(R.CompileOk) << R.Name;
    EXPECT_TRUE(R.DecodeOk) << R.Name;
    EXPECT_TRUE(R.VerifyOk) << R.Name;
    // Results arrive in input order...
    EXPECT_EQ(R.Name, getCorpus()[I].Name);
    // ...and the wire bytes are identical to the sequential path.
    EXPECT_EQ(R.Wire, Expected[I]) << R.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndModes, BatchDeterminism,
    testing::Combine(testing::Values(1u, 4u, 8u),
                     testing::Values(CodecMode::Prefix, CodecMode::Naive)),
    [](const testing::TestParamInfo<BatchDeterminism::ParamType> &Info) {
      return std::to_string(std::get<0>(Info.param)) + "threads_" +
             (std::get<1>(Info.param) == CodecMode::Prefix ? "prefix"
                                                           : "naive");
    });

TEST(Batch, OptimizedPipelineIsDeterministicToo) {
  BatchOptions Opts;
  Opts.Threads = 4;
  Opts.Optimize = true;
  std::vector<BatchResult> Results = BatchCompiler(Opts).run(corpusJobs());
  std::vector<std::vector<uint8_t>> Expected =
      sequentialWires(CodecMode::Prefix, /*Optimize=*/true);
  ASSERT_EQ(Results.size(), Expected.size());
  for (size_t I = 0; I != Results.size(); ++I) {
    EXPECT_TRUE(Results[I].ok()) << Results[I].Error;
    EXPECT_EQ(Results[I].Wire, Expected[I]) << Results[I].Name;
  }
}

TEST(Batch, CompileErrorsAreIsolatedPerUnit) {
  std::vector<BatchJob> Jobs = corpusJobs();
  Jobs.insert(Jobs.begin() + 1, {"Broken", "class Broken { int"});
  BatchOptions Opts;
  Opts.Threads = 4;
  std::vector<BatchResult> Results = BatchCompiler(Opts).run(Jobs);
  ASSERT_EQ(Results.size(), Jobs.size());
  EXPECT_FALSE(Results[1].ok());
  EXPECT_FALSE(Results[1].CompileOk);
  for (size_t I = 0; I != Results.size(); ++I)
    if (I != 1)
      EXPECT_TRUE(Results[I].ok()) << Results[I].Name << Results[I].Error;
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  std::atomic<int> Sum{0};
  for (int I = 1; I <= 100; ++I)
    Pool.submit([&Sum, I] { Sum += I; });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 5050);
}

TEST(ThreadPoolTest, AsyncReturnsResults) {
  ThreadPool Pool(2);
  std::vector<std::future<int>> Futs;
  for (int I = 0; I != 16; ++I)
    Futs.push_back(Pool.async([I] { return I * I; }));
  for (int I = 0; I != 16; ++I)
    EXPECT_EQ(Futs[I].get(), I * I);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  int X = 0;
  Pool.submit([&X] { X = 42; });
  EXPECT_EQ(X, 42); // Completed synchronously.
  Pool.wait();
  EXPECT_EQ(Pool.getNumThreads(), 0u);
}

} // namespace
