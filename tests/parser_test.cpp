//===- tests/parser_test.cpp - Parser tests -------------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lexer/Lexer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

Program parse(const std::string &Src, bool ExpectErrors = false) {
  DiagnosticEngine Diags;
  Lexer L(Src, Diags);
  Parser P(L.lexAll(), Diags);
  Program Prog = P.parseProgram();
  EXPECT_EQ(Diags.hasErrors(), ExpectErrors) << Diags.render(nullptr);
  return Prog;
}

/// Parses `int f() { return <Expr>; }` and dumps the expression, so
/// precedence is visible in the fully-parenthesized dump.
std::string exprDump(const std::string &Expr) {
  Program P =
      parse("class C { int f() { return " + Expr + "; } }");
  const auto &Body = P.Classes.at(0)->Methods.at(0)->Body->Stmts;
  const auto &Ret = static_cast<const ReturnStmt &>(*Body.at(0));
  std::string S = dumpExpr(*Ret.Value);
  if (!S.empty() && S.back() == '\n')
    S.pop_back();
  return S;
}

TEST(Parser, EmptyClass) {
  Program P = parse("class Empty {}");
  ASSERT_EQ(P.Classes.size(), 1u);
  EXPECT_EQ(P.Classes[0]->Name, "Empty");
  EXPECT_TRUE(P.Classes[0]->SuperName.empty());
}

TEST(Parser, ClassWithExtends) {
  Program P = parse("class A {} class B extends A {}");
  ASSERT_EQ(P.Classes.size(), 2u);
  EXPECT_EQ(P.Classes[1]->SuperName, "A");
}

TEST(Parser, Fields) {
  Program P = parse("class C { int a; static double b; final boolean c; "
                    "static final int d = 4; char[] e; }");
  const auto &C = *P.Classes[0];
  ASSERT_EQ(C.Fields.size(), 5u);
  EXPECT_FALSE(C.Fields[0].IsStatic);
  EXPECT_TRUE(C.Fields[1].IsStatic);
  EXPECT_TRUE(C.Fields[2].IsFinal);
  EXPECT_TRUE(C.Fields[3].IsStatic);
  EXPECT_TRUE(C.Fields[3].IsFinal);
  EXPECT_NE(C.Fields[3].Init, nullptr);
  EXPECT_EQ(C.Fields[4].DeclType.ArrayDims, 1u);
}

TEST(Parser, MethodsAndParams) {
  Program P = parse("class C { void f() {} int g(int a, double[] b) "
                    "{ return a; } static char h() { return 'x'; } }");
  const auto &C = *P.Classes[0];
  ASSERT_EQ(C.Methods.size(), 3u);
  EXPECT_EQ(C.Methods[0]->Params.size(), 0u);
  EXPECT_EQ(C.Methods[1]->Params.size(), 2u);
  EXPECT_EQ(C.Methods[1]->Params[1].DeclType.ArrayDims, 1u);
  EXPECT_TRUE(C.Methods[2]->IsStatic);
}

TEST(Parser, Constructor) {
  Program P = parse("class C { C(int x) {} void C2() {} }");
  const auto &C = *P.Classes[0];
  EXPECT_TRUE(C.Methods[0]->IsConstructor);
  EXPECT_FALSE(C.Methods[1]->IsConstructor);
}

TEST(Parser, StaticConstructorRejected) {
  parse("class C { static C() {} }", /*ExpectErrors=*/true);
}

//===----------------------------------------------------------------------===//
// Precedence and associativity
//===----------------------------------------------------------------------===//

TEST(Parser, MulBindsTighterThanAdd) {
  EXPECT_EQ(exprDump("1 + 2 * 3"), "(1 + (2 * 3))");
}

TEST(Parser, LeftAssociativity) {
  EXPECT_EQ(exprDump("1 - 2 - 3"), "((1 - 2) - 3)");
  EXPECT_EQ(exprDump("8 / 4 / 2"), "((8 / 4) / 2)");
}

TEST(Parser, ComparisonVsShift) {
  EXPECT_EQ(exprDump("1 << 2 < 3"), "((1 << 2) < 3)");
}

TEST(Parser, BitwisePrecedenceChain) {
  EXPECT_EQ(exprDump("a | b ^ c & d"), "(a | (b ^ (c & d)))");
}

TEST(Parser, LogicalPrecedence) {
  EXPECT_EQ(exprDump("a || b && c"), "(a || (b && c))");
  EXPECT_EQ(exprDump("a == b && c != d"), "((a == b) && (c != d))");
}

TEST(Parser, EqualityVsRelational) {
  EXPECT_EQ(exprDump("a < b == c > d"), "((a < b) == (c > d))");
}

TEST(Parser, UnaryBinding) {
  EXPECT_EQ(exprDump("-a * b"), "((- a) * b)");
  EXPECT_EQ(exprDump("!a && b"), "((! a) && b)");
  EXPECT_EQ(exprDump("- -a"), "(- (- a))");
}

TEST(Parser, AssignmentIsRightAssociative) {
  EXPECT_EQ(exprDump("a = b = c"), "(a = (b = c))");
}

TEST(Parser, CompoundAssignment) {
  EXPECT_EQ(exprDump("a += b * 2"), "(a += (b * 2))");
}

TEST(Parser, PostfixChains) {
  EXPECT_EQ(exprDump("a.b.c"), "((a.b).c)");
  EXPECT_EQ(exprDump("a[1][2]"), "((a[1])[2])");
  EXPECT_EQ(exprDump("a.f(1).g(2)"), "((a.f(1)).g(2))");
  EXPECT_EQ(exprDump("a[i].f()"), "((a[i]).f())");
}

TEST(Parser, IncDecForms) {
  EXPECT_EQ(exprDump("a++"), "(post++ a)");
  EXPECT_EQ(exprDump("--a"), "(--pre a)");
  EXPECT_EQ(exprDump("a[i]++"), "(post++ (a[i]))");
}

TEST(Parser, InstanceofPrecedence) {
  EXPECT_EQ(exprDump("a instanceof T == true"),
            "((a instanceof T) == true)");
}

//===----------------------------------------------------------------------===//
// Cast ambiguity
//===----------------------------------------------------------------------===//

TEST(Parser, PrimitiveCast) {
  EXPECT_EQ(exprDump("(int) x"), "((int) x)");
  EXPECT_EQ(exprDump("(double) (x + 1)"), "((double) (x + 1))");
}

TEST(Parser, ClassCastVsParens) {
  // (T) y with identifier following => cast.
  EXPECT_EQ(exprDump("(T) y"), "((T) y)");
  // (a) + b: parenthesized expression, not a cast.
  EXPECT_EQ(exprDump("(a) + b"), "(a + b)");
  // (a) (no following operand) is just parens.
  EXPECT_EQ(exprDump("(a)"), "a");
}

TEST(Parser, ArrayCastIsUnambiguous) {
  EXPECT_EQ(exprDump("(int[]) x"), "((int[]) x)");
  EXPECT_EQ(exprDump("(T[]) x"), "((T[]) x)");
}

TEST(Parser, CastOfCall) {
  EXPECT_EQ(exprDump("(T) f()"), "((T) (f()))");
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

const Stmt &firstStmt(const Program &P) {
  return *P.Classes.at(0)->Methods.at(0)->Body->Stmts.at(0);
}

TEST(Parser, LocalDeclVsExpression) {
  // `T x;` is a declaration, `t.x;` an expression.
  Program P1 = parse("class C { void f() { T x; } }");
  EXPECT_EQ(firstStmt(P1).Kind, StmtKind::VarDecl);
  Program P2 = parse("class C { void f() { t.x(); } }");
  EXPECT_EQ(firstStmt(P2).Kind, StmtKind::Expr);
  Program P3 = parse("class C { void f() { T[] x; } }");
  EXPECT_EQ(firstStmt(P3).Kind, StmtKind::VarDecl);
  Program P4 = parse("class C { void f() { t[0] = 1; } }");
  EXPECT_EQ(firstStmt(P4).Kind, StmtKind::Expr);
}

TEST(Parser, IfElseChain) {
  Program P = parse(
      "class C { void f(int x) { if (x > 0) x = 1; else if (x < 0) "
      "x = 2; else x = 3; } }");
  const auto &If = static_cast<const IfStmt &>(firstStmt(P));
  ASSERT_NE(If.Else, nullptr);
  EXPECT_EQ(If.Else->Kind, StmtKind::If);
}

TEST(Parser, DanglingElseBindsToInner) {
  Program P = parse(
      "class C { void f(int x) { if (x > 0) if (x > 1) x = 1; else x = 2; "
      "} }");
  const auto &Outer = static_cast<const IfStmt &>(firstStmt(P));
  EXPECT_EQ(Outer.Else, nullptr);
  const auto &Inner = static_cast<const IfStmt &>(*Outer.Then);
  EXPECT_NE(Inner.Else, nullptr);
}

TEST(Parser, ForVariants) {
  parse("class C { void f() { for (;;) break; } }");
  parse("class C { void f() { for (int i = 0; i < 9; i++) {} } }");
  parse("class C { void f() { int i; for (i = 0; i < 9; i = i + 1) {} } }");
  parse("class C { void f() { for (int i = 0; ; i++) break; } }");
}

TEST(Parser, DoWhile) {
  Program P = parse("class C { void f() { do { } while (true); } }");
  EXPECT_EQ(firstStmt(P).Kind, StmtKind::DoWhile);
}

TEST(Parser, NewForms) {
  EXPECT_EQ(exprDump("new T()"), "(new T())");
  EXPECT_EQ(exprDump("new T(1, x)"), "(new T(1, x))");
  EXPECT_EQ(exprDump("new int[5]"), "(new int[5])");
  EXPECT_EQ(exprDump("new int[n][]"), "(new int[][n])");
  EXPECT_EQ(exprDump("new T[n]"), "(new T[n])");
}

//===----------------------------------------------------------------------===//
// Error recovery
//===----------------------------------------------------------------------===//

TEST(Parser, MissingSemicolonRecovers) {
  parse("class C { void f() { int x = 1 int y = 2; } }",
        /*ExpectErrors=*/true);
}

TEST(Parser, BadTopLevel) {
  parse("int x;", /*ExpectErrors=*/true);
}

TEST(Parser, MissingClassName) {
  parse("class { }", /*ExpectErrors=*/true);
}

TEST(Parser, AssignToNonLValueRejected) {
  parse("class C { void f() { 1 = 2; } }", /*ExpectErrors=*/true);
  parse("class C { void f(int a, int b) { a + b = 2; } }",
        /*ExpectErrors=*/true);
}

TEST(Parser, RecoveryProducesMultipleErrors) {
  DiagnosticEngine Diags;
  std::string Src = "class C { void f() { @ } void g() { # } }";
  Lexer L(Src, Diags);
  Parser P(L.lexAll(), Diags);
  P.parseProgram();
  EXPECT_GE(Diags.getNumErrors(), 2u);
}

} // namespace
