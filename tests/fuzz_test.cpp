//===- tests/fuzz_test.cpp - Random-program differential fuzz -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random type-correct MJ programs from seeded RNGs and runs
/// each through the full pipeline matrix: SafeTSA, optimized SafeTSA,
/// encode/decode round trip, and stack bytecode. All four executions must
/// agree on termination kind AND output — including programs that trap
/// (the generator deliberately emits unguarded divisions and array
/// accesses). This is the broadest semantic net in the suite: it has no
/// opinion about what the right answer is, only that every pipeline
/// produces the same one.
///
/// Mutation survivors (streams both decoder pipelines accept) are handed
/// to the shared testgen DifferentialRunner wire matrix — scalar decode,
/// tier 0 ± GC stress, and all five tier-1 variants against the
/// tree-walk oracle — with reproducer dump-on-failure, the same harness
/// `safetsa-gen` soaks with (DESIGN.md §15).
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCInterp.h"
#include "bytecode/BCVerifier.h"
#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "support/Digest.h"
#include "testgen/DifferentialRunner.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <sstream>

using namespace safetsa;

namespace {

/// Emits random type-correct MJ source. Every program terminates (loops
/// are counted) but may trap on division or array bounds.
class ProgramGen {
public:
  explicit ProgramGen(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    OS << "class Main {\n";
    OS << "  static int g1;\n  static int g2 = 7;\n";
    unsigned NumFuncs = 1 + Rng() % 3;
    for (unsigned F = 0; F != NumFuncs; ++F)
      genFunction(F);
    genMain(NumFuncs);
    OS << "}\n";
    return OS.str();
  }

private:
  std::mt19937 Rng;
  std::ostringstream OS;
  std::vector<std::string> IntVars;
  std::vector<std::string> BoolVars;
  std::vector<std::string> ArrVars;
  unsigned NextVar = 0;
  unsigned MaxCallable = 0; // Functions may call strictly lower indices.

  unsigned pick(unsigned N) { return Rng() % N; }
  bool coin() { return Rng() % 2 == 0; }

  std::string freshVar() { return "v" + std::to_string(NextVar++); }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  std::string intExpr(unsigned Depth) {
    if (Depth == 0 || pick(4) == 0) {
      switch (pick(3)) {
      case 0:
        return std::to_string(static_cast<int>(Rng() % 200) - 100);
      case 1:
        if (!IntVars.empty())
          return IntVars[pick(IntVars.size())];
        return std::to_string(Rng() % 50);
      default:
        return coin() ? "g1" : "g2";
      }
    }
    switch (pick(8)) {
    case 0:
      return "(" + intExpr(Depth - 1) + " + " + intExpr(Depth - 1) + ")";
    case 1:
      return "(" + intExpr(Depth - 1) + " - " + intExpr(Depth - 1) + ")";
    case 2:
      return "(" + intExpr(Depth - 1) + " * " + intExpr(Depth - 1) + ")";
    case 3:
      // Unguarded: may trap; all pipelines must agree.
      return "(" + intExpr(Depth - 1) + " / " + intExpr(Depth - 1) + ")";
    case 4:
      return "(" + intExpr(Depth - 1) + " % " + intExpr(Depth - 1) + ")";
    case 5:
      if (!ArrVars.empty()) {
        const std::string &A = ArrVars[pick(ArrVars.size())];
        // Mostly in bounds, occasionally not.
        if (pick(5) == 0)
          return A + "[" + intExpr(Depth - 1) + "]";
        return A + "[(" + intExpr(Depth - 1) + ") & 3]";
      }
      return "(" + intExpr(Depth - 1) + " ^ " + intExpr(Depth - 1) + ")";
    case 6:
      return "(" + intExpr(Depth - 1) + " << " +
             std::to_string(pick(5)) + ")";
    default:
      return "(- " + intExpr(Depth - 1) + ")";
    }
  }

  std::string boolExpr(unsigned Depth) {
    if (Depth == 0 || pick(3) == 0) {
      if (!BoolVars.empty() && coin())
        return BoolVars[pick(BoolVars.size())];
      return coin() ? "true" : "false";
    }
    switch (pick(6)) {
    case 0:
      return "(" + intExpr(Depth - 1) + " < " + intExpr(Depth - 1) + ")";
    case 1:
      return "(" + intExpr(Depth - 1) + " == " + intExpr(Depth - 1) + ")";
    case 2:
      return "(" + boolExpr(Depth - 1) + " && " + boolExpr(Depth - 1) + ")";
    case 3:
      return "(" + boolExpr(Depth - 1) + " || " + boolExpr(Depth - 1) + ")";
    case 4:
      return "(!" + boolExpr(Depth - 1) + ")";
    default:
      return "(" + intExpr(Depth - 1) + " >= " + intExpr(Depth - 1) + ")";
    }
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  void indent(unsigned N) {
    for (unsigned I = 0; I != N; ++I)
      OS << "  ";
  }

  void genStmt(unsigned Depth, unsigned Ind) {
    switch (pick(Depth > 0 ? 10 : 5)) {
    case 0: {
      std::string V = freshVar();
      indent(Ind);
      OS << "int " << V << " = " << intExpr(2) << ";\n";
      IntVars.push_back(V);
      break;
    }
    case 1:
      if (!IntVars.empty()) {
        indent(Ind);
        OS << IntVars[pick(IntVars.size())] << " = " << intExpr(2)
           << ";\n";
        break;
      }
      [[fallthrough]];
    case 2:
      indent(Ind);
      OS << "IO.printInt(" << intExpr(2) << ");\n";
      indent(Ind);
      OS << "IO.println();\n";
      break;
    case 3:
      if (!ArrVars.empty()) {
        indent(Ind);
        OS << ArrVars[pick(ArrVars.size())] << "[(" << intExpr(1)
           << ") & 3] = " << intExpr(2) << ";\n";
        break;
      }
      [[fallthrough]];
    case 4: {
      indent(Ind);
      OS << (coin() ? "g1" : "g2") << " = " << intExpr(2) << ";\n";
      break;
    }
    case 5: {
      indent(Ind);
      OS << "if (" << boolExpr(2) << ") {\n";
      genBlock(Depth - 1, Ind + 1);
      if (coin()) {
        indent(Ind);
        OS << "} else {\n";
        genBlock(Depth - 1, Ind + 1);
      }
      indent(Ind);
      OS << "}\n";
      break;
    }
    case 6: {
      std::string I = freshVar();
      indent(Ind);
      OS << "for (int " << I << " = 0; " << I << " < "
         << (1 + pick(5)) << "; " << I << "++) {\n";
      IntVars.push_back(I);
      genBlock(Depth - 1, Ind + 1);
      IntVars.pop_back();
      indent(Ind);
      OS << "}\n";
      break;
    }
    case 7: {
      indent(Ind);
      OS << "try {\n";
      genBlock(Depth - 1, Ind + 1);
      indent(Ind);
      OS << "} catch {\n";
      genBlock(Depth - 1, Ind + 1);
      indent(Ind);
      OS << "}\n";
      break;
    }
    case 8: {
      std::string B = freshVar();
      indent(Ind);
      OS << "boolean " << B << " = " << boolExpr(2) << ";\n";
      BoolVars.push_back(B);
      break;
    }
    default: {
      if (MaxCallable > 0) {
        indent(Ind);
        OS << "IO.printInt(f" << pick(MaxCallable) << "(" << intExpr(1)
           << ", " << intExpr(1) << "));\n";
        indent(Ind);
        OS << "IO.println();\n";
      } else {
        indent(Ind);
        OS << "IO.printInt(" << intExpr(2) << ");\n";
      }
      break;
    }
    }
  }

  void genBlock(unsigned Depth, unsigned Ind) {
    // MJ scoping: declarations inside a block are invisible outside it.
    size_t SavedInts = IntVars.size();
    size_t SavedBools = BoolVars.size();
    unsigned N = 1 + pick(3);
    for (unsigned I = 0; I != N; ++I)
      genStmt(Depth, Ind);
    IntVars.resize(SavedInts);
    BoolVars.resize(SavedBools);
  }

  void genFunction(unsigned Index) {
    // Snapshot/restore the variable environment per function.
    IntVars = {"a", "b"};
    BoolVars.clear();
    ArrVars.clear();
    MaxCallable = Index; // Only lower-numbered functions are callable.
    OS << "  static int f" << Index << "(int a, int b) {\n";
    OS << "    int[] buf = new int[4];\n";
    ArrVars.push_back("buf");
    genBlock(2 + pick(2), 2);
    OS << "    return " << intExpr(2) << ";\n  }\n";
  }

  void genMain(unsigned NumFuncs) {
    IntVars.clear();
    BoolVars.clear();
    ArrVars.clear();
    MaxCallable = NumFuncs;
    OS << "  static void main() {\n";
    OS << "    int[] data = new int[4];\n";
    ArrVars.push_back("data");
    std::string S = freshVar();
    OS << "    int " << S << " = " << (1 + pick(100)) << ";\n";
    IntVars.push_back(S);
    genBlock(3, 2);
    for (unsigned F = 0; F != NumFuncs; ++F) {
      OS << "    IO.printInt(f" << F << "(" << intExpr(1) << ", "
         << intExpr(1) << "));\n    IO.println();\n";
    }
    OS << "    IO.printInt(g1 + g2);\n    IO.println();\n";
    OS << "  }\n";
  }
};

struct Outcome {
  RuntimeError Err = RuntimeError::Internal;
  std::string Output;

  bool operator==(const Outcome &O) const {
    return Err == O.Err && Output == O.Output;
  }
};

class DifferentialFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialFuzz, AllPipelinesAgree) {
  ProgramGen Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE("seed " + std::to_string(GetParam()));

  auto P = compileMJ("fuzz.mj", Source);
  ASSERT_TRUE(P->ok()) << P->renderDiagnostics() << "\n" << Source;
  {
    TSAVerifier V(*P->TSA);
    ASSERT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front()) << "\n"
        << Source;
  }

  auto RunTSA = [&](const TSAModule &M, ClassTable &Table) {
    Runtime RT(Table, /*Fuel=*/20'000'000);
    TSAInterpreter I(M, RT);
    ExecResult R = I.runMain();
    return Outcome{R.Err, RT.getOutput()};
  };

  Outcome Reference = RunTSA(*P->TSA, *P->Table);
  // Programs that exhaust fuel are excluded: the two interpreters count
  // fuel differently, so agreement is not required there.
  if (Reference.Err == RuntimeError::OutOfFuel)
    GTEST_SKIP() << "fuel-bound program";

  // Bytecode.
  {
    BCCompiler BCC(P->Types, *P->Table);
    auto BC = BCC.compile(P->AST);
    BCVerifier BV(*BC);
    ASSERT_TRUE(BV.verify())
        << (BV.getErrors().empty() ? "" : BV.getErrors().front()) << "\n"
        << Source;
    Runtime RT(*P->Table, /*Fuel=*/20'000'000);
    BCInterpreter I(*BC, RT, P->Types);
    ExecResult R = I.runMain();
    Outcome O{R.Err, RT.getOutput()};
    EXPECT_EQ(O.Err, Reference.Err)
        << "bytecode: " << runtimeErrorName(O.Err) << " vs "
        << runtimeErrorName(Reference.Err) << "\n"
        << Source;
    EXPECT_EQ(O.Output, Reference.Output) << Source;
  }

  // Decode round trip.
  {
    std::string Err;
    auto Unit = decodeModule(encodeModule(*P->TSA), &Err);
    ASSERT_TRUE(Unit) << Err << "\n" << Source;
    Outcome O = RunTSA(*Unit->Module, *Unit->Table);
    EXPECT_TRUE(O == Reference) << Source;
  }

  // Optimized (+ its round trip).
  {
    optimizeModule(*P->TSA);
    TSAVerifier V(*P->TSA);
    ASSERT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front()) << "\n"
        << Source;
    Outcome O = RunTSA(*P->TSA, *P->Table);
    EXPECT_TRUE(O == Reference)
        << "optimizer changed behaviour\n"
        << Source;
    std::string Err;
    auto Unit = decodeModule(encodeModule(*P->TSA), &Err);
    ASSERT_TRUE(Unit) << Err << "\n" << Source;
    Outcome O2 = RunTSA(*Unit->Module, *Unit->Table);
    EXPECT_TRUE(O2 == Reference) << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(1000u, 1060u));

//===----------------------------------------------------------------------===//
// Fused-verify differential harness
//===----------------------------------------------------------------------===//
//
// The fused decoder claims to enforce the complete verifier rule set
// during decode. The claim is checked by brute force: every byte stream —
// a valid encoding or any mutation of one — must get the identical
// accept/reject verdict from the fused path and from the legacy pipeline
// (structural-only decode, then TSAVerifier, then the counter check).
// A stream only one path rejects is either a verifier rule the fused
// decoder dropped or a bogus rejection it invented.

/// Legacy three-stage verdict for one byte stream. Uses the scalar
/// bit-at-a-time reader, so one mismatch-free run also proves the decode
/// tables bit-equivalent to the scalar walk on hostile input.
bool legacyAccepts(const std::vector<uint8_t> &Bytes) {
  std::string Err;
  auto Unit = decodeModule(ByteSpan(Bytes), &Err,
                           DecodeOptions{CodecMode::Prefix, false, false});
  if (!Unit)
    return false;
  TSAVerifier V(*Unit->Module);
  return V.verify() && counterCheckModule(*Unit->Module);
}

/// Fused single-pass verdict for the same stream.
bool fusedAccepts(const std::vector<uint8_t> &Bytes) {
  std::string Err;
  auto Unit = decodeModule(ByteSpan(Bytes), &Err,
                           DecodeOptions{CodecMode::Prefix, true});
  return Unit != nullptr;
}

/// A stream both paths accept must also *execute* soundly — not just at
/// one forced-inlining configuration, but across the shared testgen
/// matrix: scalar decode, tier 0 (± GC stress), and every tier-1 variant
/// (default, fusion masked, inlining masked, budget-maxed, GC stress),
/// each against the tree-walk oracle on the decoded module. A surviving
/// mutant that perturbs the splicer, the fusion shadow slots, or the
/// reference-slot maps surfaces here as a divergence or a sanitizer
/// report — and dumps its wire image + detail into the reproducer
/// directory for offline triage.
testgen::DifferentialRunner &survivorRunner() {
  static testgen::DifferentialRunner *Runner = [] {
    testgen::RunnerOptions Opts;
    Opts.DumpDir = (std::filesystem::temp_directory_path() /
                    "safetsa_fuzz_survivors")
                       .string();
    return new testgen::DifferentialRunner(Opts);
  }();
  return *Runner;
}

class FusedVerdictFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(FusedVerdictFuzz, FusedAndLegacyVerdictsMatch) {
  ProgramGen Gen(GetParam());
  std::string Source = Gen.generate();
  SCOPED_TRACE("seed " + std::to_string(GetParam()));

  auto P = compileMJ("fuzz.mj", Source);
  ASSERT_TRUE(P->ok()) << P->renderDiagnostics() << "\n" << Source;
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);

  auto CheckVerdict = [&](const std::vector<uint8_t> &Bytes,
                          const std::string &What) {
    bool Fused = fusedAccepts(Bytes);
    bool Legacy = legacyAccepts(Bytes);
    EXPECT_EQ(Fused, Legacy)
        << What << ": fused says " << (Fused ? "accept" : "reject")
        << ", legacy says " << (Legacy ? "accept" : "reject") << "\n"
        << Source;
    // Content addressing underneath the distribution layer: any mutation
    // that changed the bytes must change the digest, or a cache keyed on
    // digests could serve a tampered stream under the original's verdict.
    if (Bytes != Wire) {
      EXPECT_NE(digestOf(ByteSpan(Bytes)), digestOf(ByteSpan(Wire))) << What;
    }
    // Survivors run the full execution matrix; any divergence dumps a
    // reproducer (wire bytes + detail, keyed by content digest).
    if (Fused && Legacy) {
      std::string Detail;
      EXPECT_TRUE(survivorRunner().checkWire(Bytes, What, &Detail))
          << Detail << "\n" << Source;
    }
  };

  // The untampered encoding must be accepted by both.
  EXPECT_TRUE(fusedAccepts(Wire)) << Source;
  CheckVerdict(Wire, "untampered");

  std::mt19937 Rng(GetParam() * 7919 + 17);
  auto Pick = [&](size_t N) { return Rng() % N; };

  // Single-bit flips at random positions.
  for (unsigned I = 0; I != 40; ++I) {
    std::vector<uint8_t> M = Wire;
    size_t Byte = Pick(M.size());
    M[Byte] ^= uint8_t(1) << Pick(8);
    CheckVerdict(M, "bit flip at byte " + std::to_string(Byte));
  }

  // Whole-byte substitutions.
  for (unsigned I = 0; I != 20; ++I) {
    std::vector<uint8_t> M = Wire;
    size_t Byte = Pick(M.size());
    M[Byte] = static_cast<uint8_t>(Rng());
    CheckVerdict(M, "byte substitution at " + std::to_string(Byte));
  }

  // Truncations at random lengths (including the empty stream).
  for (unsigned I = 0; I != 10; ++I) {
    std::vector<uint8_t> M = Wire;
    M.resize(Pick(M.size() + 1));
    CheckVerdict(M, "truncation to " + std::to_string(M.size()));
  }

  // Random garbage appended past the end.
  {
    std::vector<uint8_t> M = Wire;
    for (unsigned I = 0; I != 8; ++I)
      M.push_back(static_cast<uint8_t>(Rng()));
    CheckVerdict(M, "trailing garbage");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusedVerdictFuzz,
                         ::testing::Range(2000u, 2030u));

} // namespace
