//===- tests/differential_test.cpp - Corpus pipeline equivalence -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest correctness evidence in the suite: every corpus program
/// is run through five independent executions and all outputs must agree:
///   1. SafeTSA evaluated directly,
///   2. SafeTSA after the full optimization pipeline (CP + CSE + DCE),
///   3. SafeTSA encoded to bytes, decoded into a *fresh* class table, and
///      evaluated on the consumer side,
///   4. the optimized module after an encode/decode round trip,
///   5. the baseline stack bytecode, compiled from the same AST.
/// Every intermediate module must also pass its verifier.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCInterp.h"
#include "bytecode/BCVerifier.h"
#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

class DifferentialTest : public ::testing::TestWithParam<CorpusProgram> {};

std::string runTSA(const TSAModule &Module, ClassTable &Table,
                   RuntimeError *Err = nullptr) {
  Runtime RT(Table);
  TSAInterpreter Interp(Module, RT);
  ExecResult R = Interp.runMain();
  if (Err)
    *Err = R.Err;
  EXPECT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
  return RT.getOutput();
}

TEST_P(DifferentialTest, AllExecutionsAgree) {
  const CorpusProgram &P = GetParam();
  auto C = compileMJ(P.Name, P.Source);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();

  // 1. Unoptimized SafeTSA.
  {
    TSAVerifier V(*C->TSA);
    ASSERT_TRUE(V.verify()) << (V.getErrors().empty()
                                    ? ""
                                    : V.getErrors().front());
  }
  std::string Reference = runTSA(*C->TSA, *C->Table);
  ASSERT_FALSE(Reference.empty()) << "corpus program produced no output";

  // 5 (early, before the module is mutated). Baseline bytecode.
  {
    BCCompiler BCC(C->Types, *C->Table);
    auto BC = BCC.compile(C->AST);
    BCVerifier BV(*BC);
    ASSERT_TRUE(BV.verify())
        << (BV.getErrors().empty() ? "" : BV.getErrors().front());
    Runtime RT(*C->Table);
    BCInterpreter Interp(*BC, RT, C->Types);
    ExecResult R = Interp.runMain();
    ASSERT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
    EXPECT_EQ(RT.getOutput(), Reference) << "bytecode backend diverged";
  }

  // 3. Mobile-code round trip of the unoptimized module.
  {
    std::vector<uint8_t> Wire = encodeModule(*C->TSA);
    ASSERT_FALSE(Wire.empty());
    std::string Err;
    auto Unit = decodeModule(Wire, &Err);
    ASSERT_TRUE(Unit) << Err;
    TSAVerifier V(*Unit->Module);
    ASSERT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front());
    EXPECT_EQ(runTSA(*Unit->Module, *Unit->Table), Reference)
        << "decoded module diverged";
  }

  // 2. Optimized module (mutates C->TSA).
  OptStats Stats = optimizeModule(*C->TSA);
  {
    TSAVerifier V(*C->TSA);
    ASSERT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front());
  }
  EXPECT_EQ(runTSA(*C->TSA, *C->Table), Reference)
      << "optimizer changed behaviour";
  EXPECT_GT(Stats.CSERemoved + Stats.DCERemoved, 0u)
      << "optimizer found nothing on a corpus program";

  // 4. Round trip of the optimized module.
  {
    std::vector<uint8_t> Wire = encodeModule(*C->TSA);
    std::string Err;
    auto Unit = decodeModule(Wire, &Err);
    ASSERT_TRUE(Unit) << Err;
    TSAVerifier V(*Unit->Module);
    ASSERT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front());
    EXPECT_EQ(runTSA(*Unit->Module, *Unit->Table), Reference)
        << "optimized+decoded module diverged";
  }

  // Naive-mode codec round trip (ablation path must be correct too).
  {
    std::vector<uint8_t> Wire = encodeModule(*C->TSA, CodecMode::Naive);
    std::string Err;
    auto Unit = decodeModule(Wire, &Err, CodecMode::Naive);
    ASSERT_TRUE(Unit) << Err;
    EXPECT_EQ(runTSA(*Unit->Module, *Unit->Table), Reference)
        << "naive-mode codec diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialTest, ::testing::ValuesIn(getCorpus()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Name);
    });

} // namespace
