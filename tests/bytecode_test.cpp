//===- tests/bytecode_test.cpp - Baseline substrate tests -----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode baseline in isolation: class-file round trips, link-time
/// resolution, the dataflow verifier's accept/reject behaviour (including
/// the classic attacks SafeTSA makes structurally impossible), and
/// instruction-shape expectations that Figure 5 relies on.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCFile.h"
#include "bytecode/BCInterp.h"
#include "bytecode/BCVerifier.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

struct Built {
  std::unique_ptr<CompiledProgram> P;
  std::unique_ptr<BCModule> BC;
};

Built build(const std::string &Src) {
  Built B;
  B.P = compileMJ("bc.mj", Src, /*EmitTSA=*/false);
  EXPECT_TRUE(B.P->ok()) << B.P->renderDiagnostics();
  BCCompiler C(B.P->Types, *B.P->Table);
  B.BC = C.compile(B.P->AST);
  return B;
}

std::string runBC(const BCModule &M, CompiledProgram &P) {
  Runtime RT(*P.Table);
  BCInterpreter I(M, RT, P.Types);
  ExecResult R = I.runMain();
  EXPECT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
  return RT.getOutput();
}

BCMethod *findMethod(BCModule &M, const std::string &Name) {
  for (BCClass &C : M.Classes)
    for (BCMethod &Mth : C.Methods)
      if (Mth.Symbol && Mth.Symbol->Name == Name)
        return &Mth;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Compilation shapes
//===----------------------------------------------------------------------===//

TEST(Bytecode, IIncForIntLocals) {
  Built B = build("class Main { static void main() { "
                  "for (int i = 0; i < 3; i++) IO.printInt(i); } }");
  BCMethod *Main = findMethod(*B.BC, "main");
  ASSERT_NE(Main, nullptr);
  bool HasIInc = false;
  for (size_t I = 0; I < Main->Code.size();) {
    BC Op = static_cast<BC>(Main->Code[I]);
    if (Op == BC::IInc)
      HasIInc = true;
    I += 1 + bcOperandWidth(Op);
  }
  EXPECT_TRUE(HasIInc) << "int local ++ should compile to iinc";
}

TEST(Bytecode, ConditionsCompileToBranchesNotValues) {
  // `if (a < b)` should use if_icmpge directly, with no iconst/booleans.
  Built B = build("class Main { static void f(int a, int b) { "
                  "if (a < b) IO.printInt(1); } "
                  "static void main() { f(1, 2); } }");
  BCMethod *F = findMethod(*B.BC, "f");
  ASSERT_NE(F, nullptr);
  bool HasCmpBranch = false;
  for (size_t I = 0; I < F->Code.size();) {
    BC Op = static_cast<BC>(F->Code[I]);
    if (Op == BC::IfICmpGe || Op == BC::IfICmpLt)
      HasCmpBranch = true;
    I += 1 + bcOperandWidth(Op);
  }
  EXPECT_TRUE(HasCmpBranch);
}

TEST(Bytecode, SmallConstantsUseCompactForms) {
  Built B = build("class Main { static void main() { IO.printInt(0); "
                  "IO.printInt(1); IO.printInt(100); IO.printInt(30000); "
                  "IO.printInt(100000); } }");
  BCMethod *Main = findMethod(*B.BC, "main");
  unsigned Ldc = 0, BiPush = 0, SiPush = 0, IConst = 0;
  for (size_t I = 0; I < Main->Code.size();) {
    BC Op = static_cast<BC>(Main->Code[I]);
    if (Op == BC::Ldc)
      ++Ldc;
    if (Op == BC::BIPush)
      ++BiPush;
    if (Op == BC::SIPush)
      ++SiPush;
    if (Op == BC::IConst0 || Op == BC::IConst1)
      ++IConst;
    I += 1 + bcOperandWidth(Op);
  }
  EXPECT_EQ(IConst, 2u);
  EXPECT_EQ(BiPush, 1u);
  EXPECT_EQ(SiPush, 1u);
  EXPECT_EQ(Ldc, 1u); // Only 100000 needs the pool.
}

TEST(Bytecode, MaxStackIsRespectedAtRuntime) {
  Built B = build("class Main { static int f(int a, int b, int c) { "
                  "return a * (b + c * (a - b)); } "
                  "static void main() { IO.printInt(f(2, 3, 4)); } }");
  BCMethod *F = findMethod(*B.BC, "f");
  EXPECT_GE(F->MaxStack, 3u);
  EXPECT_LE(F->MaxStack, 8u);
  EXPECT_EQ(runBC(*B.BC, *B.P), "-2");
}

//===----------------------------------------------------------------------===//
// Class-file round trip
//===----------------------------------------------------------------------===//

TEST(Bytecode, FileRoundTripIsByteExact) {
  Built B = build(findCorpusProgram("Shapes") ? "class X {}"
                                              : "class X {}");
  // Use a real corpus program for coverage.
  const CorpusProgram *Prog = findCorpusProgram("SourceClass");
  ASSERT_NE(Prog, nullptr);
  Built B2 = build(Prog->Source);
  std::vector<uint8_t> Bytes = writeBCModule(*B2.BC);
  std::string Err;
  auto Read = readBCModule(Bytes, &Err);
  ASSERT_TRUE(Read) << Err;
  EXPECT_EQ(writeBCModule(*Read), Bytes);
  EXPECT_EQ(Read->countInstructions(), B2.BC->countInstructions());
}

TEST(Bytecode, LinkedReadBackExecutes) {
  const CorpusProgram *Prog = findCorpusProgram("BatchParser");
  ASSERT_NE(Prog, nullptr);
  Built B = build(Prog->Source);
  std::string Expected = runBC(*B.BC, *B.P);

  std::vector<uint8_t> Bytes = writeBCModule(*B.BC);
  std::string Err;
  auto Read = readBCModule(Bytes, &Err);
  ASSERT_TRUE(Read) << Err;
  ASSERT_TRUE(linkBCModule(*Read, *B.P->Table, B.P->Types, &Err)) << Err;
  EXPECT_EQ(runBC(*Read, *B.P), Expected);
}

TEST(Bytecode, ReaderRejectsCorruptContainers) {
  const CorpusProgram *Prog = findCorpusProgram("Main");
  Built B = build(Prog->Source);
  std::vector<uint8_t> Bytes = writeBCModule(*B.BC);
  std::string Err;
  // Truncations at every prefix must fail cleanly or round-trip.
  for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    EXPECT_EQ(readBCModule(Cut, &Err), nullptr);
  }
  // Bad magic.
  std::vector<uint8_t> Bad = Bytes;
  Bad[0] ^= 0x01;
  EXPECT_EQ(readBCModule(Bad, &Err), nullptr);
}

TEST(Bytecode, LinkerRejectsUnresolvedMembers) {
  Built B = build("class C { int v; int f() { return v; } } "
                  "class Main { static void main() { "
                  "IO.printInt(new C().f()); } }");
  std::vector<uint8_t> Bytes = writeBCModule(*B.BC);
  std::string Err;
  auto Read = readBCModule(Bytes, &Err);
  ASSERT_TRUE(Read);
  // Link against a table that lacks class C.
  auto Other = compileMJ("other.mj", "class Unrelated {}",
                         /*EmitTSA=*/false);
  EXPECT_FALSE(linkBCModule(*Read, *Other->Table, Other->Types, &Err));
  EXPECT_NE(Err.find("unresolved"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Dataflow verifier
//===----------------------------------------------------------------------===//

class BCVerifyCorpus : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(BCVerifyCorpus, AcceptsCompilerOutput) {
  Built B = build(GetParam().Source);
  BCVerifier V(*B.BC);
  EXPECT_TRUE(V.verify())
      << (V.getErrors().empty() ? "" : V.getErrors().front());
  EXPECT_GT(V.getIterationCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, BCVerifyCorpus, ::testing::ValuesIn(getCorpus()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Name);
    });

/// Replaces the first occurrence of \p From with \p To in main's code.
bool patchOpcode(BCModule &M, BC From, BC To) {
  for (BCClass &C : M.Classes)
    for (BCMethod &Mth : C.Methods)
      for (size_t I = 0; I < Mth.Code.size();) {
        BC Op = static_cast<BC>(Mth.Code[I]);
        if (Op == From) {
          Mth.Code[I] = static_cast<uint8_t>(To);
          return true;
        }
        I += 1 + bcOperandWidth(Op);
      }
  return false;
}

TEST(BCVerify, RejectsTypeConfusionIntAsRef) {
  Built B = build("class C { int v; } class Main { static void main() { "
                  "C c = new C(); IO.printInt(c.v); } }");
  // Retype an aload as iload: the getfield then sees an int.
  ASSERT_TRUE(patchOpcode(*B.BC, BC::ALoad, BC::ILoad));
  BCVerifier V(*B.BC);
  EXPECT_FALSE(V.verify());
}

TEST(BCVerify, RejectsStackUnderflow) {
  Built B = build("class Main { static void main() { "
                  "IO.printInt(1 + 2); } }");
  // iadd with only one value: replace a push with a nop... simplest:
  // replace iconst with nop is impossible (different widths), so inject
  // an extra Pop before a return.
  BCMethod *Main = findMethod(*B.BC, "main");
  std::vector<uint8_t> Code = Main->Code;
  Code.insert(Code.end() - 1, static_cast<uint8_t>(BC::Pop));
  Main->Code = Code;
  BCVerifier V(*B.BC);
  EXPECT_FALSE(V.verify());
}

TEST(BCVerify, RejectsBranchIntoOperands) {
  Built B = build("class Main { static void main() { int x = 70000; "
                  "if (x > 0) IO.printInt(x); } }");
  BCMethod *Main = findMethod(*B.BC, "main");
  // Find a conditional branch and skew its offset by one byte so it lands
  // mid-instruction.
  bool Patched = false;
  for (size_t I = 0; I < Main->Code.size() && !Patched;) {
    BC Op = static_cast<BC>(Main->Code[I]);
    if (Op == BC::IfLe || Op == BC::IfGt || Op == BC::Goto) {
      Main->Code[I + 2] += 1;
      Patched = true;
    }
    I += 1 + bcOperandWidth(Op);
  }
  ASSERT_TRUE(Patched);
  BCVerifier V(*B.BC);
  EXPECT_FALSE(V.verify());
}

TEST(BCVerify, RejectsFallingOffTheEnd) {
  Built B = build("class Main { static void main() { IO.println(); } }");
  BCMethod *Main = findMethod(*B.BC, "main");
  Main->Code.pop_back(); // Drop the return.
  BCVerifier V(*B.BC);
  EXPECT_FALSE(V.verify());
}

TEST(BCVerify, RejectsWrongReturnKind) {
  Built B = build("class Main { static int f() { return 3; } "
                  "static void main() { IO.printInt(f()); } }");
  ASSERT_TRUE(patchOpcode(*B.BC, BC::IReturn, BC::Return));
  BCVerifier V(*B.BC);
  EXPECT_FALSE(V.verify());
}

TEST(BCVerify, RejectsBadPoolIndexKinds) {
  Built B = build("class C { int v; } class Main { static void main() { "
                  "C c = new C(); IO.printInt(c.v); } }");
  // Point the getfield at a Utf8 entry instead of a FieldRef.
  BCMethod *Main = findMethod(*B.BC, "main");
  bool Patched = false;
  for (size_t I = 0; I < Main->Code.size() && !Patched;) {
    BC Op = static_cast<BC>(Main->Code[I]);
    if (Op == BC::GetField) {
      Main->Code[I + 1] = 0;
      Main->Code[I + 2] = 1; // Pool entry 1 is a Utf8 in practice.
      Patched = true;
    }
    I += 1 + bcOperandWidth(Op);
  }
  ASSERT_TRUE(Patched);
  ASSERT_NE(B.BC->Pool[1].K, PoolEntry::Kind::FieldRef);
  BCVerifier V(*B.BC);
  EXPECT_FALSE(V.verify());
}

TEST(BCVerify, MergePointsRequireConsistentStacks) {
  // Hand-craft: two paths reaching a join with different stack depths.
  Built B = build("class Main { static void main() { IO.println(); } }");
  BCMethod *Main = findMethod(*B.BC, "main");
  // iconst_0; ifeq +4 ; iconst_1 ; <join> return
  // One path has 1 value, the other 0 at the join.
  std::vector<uint8_t> Code;
  Code.push_back(static_cast<uint8_t>(BC::IConst0));
  Code.push_back(static_cast<uint8_t>(BC::IfEq));
  Code.push_back(0);
  Code.push_back(4); // to `return`
  Code.push_back(static_cast<uint8_t>(BC::IConst1));
  Code.push_back(static_cast<uint8_t>(BC::Return));
  Main->Code = Code;
  Main->MaxStack = 4;
  BCVerifier V(*B.BC);
  EXPECT_FALSE(V.verify());
}

//===----------------------------------------------------------------------===//
// Interpreter details
//===----------------------------------------------------------------------===//

TEST(Bytecode, DupInstructionsBehave) {
  // Compound array assignment exercises dup2/dup_x2.
  Built B = build("class Main { static void main() { int[] a = new "
                  "int[2]; a[1] = 10; IO.printInt(a[1] += 5); "
                  "IO.printInt(a[1]); } }");
  EXPECT_EQ(runBC(*B.BC, *B.P), "1515");
}

TEST(Bytecode, FieldInitsViaTempSlot) {
  Built B = build("class C { int a = 3; int b = a * 2; } "
                  "class Main { static void main() { C c = new C(); "
                  "IO.printInt(c.a + c.b); } }");
  EXPECT_EQ(runBC(*B.BC, *B.P), "9");
}

TEST(Bytecode, DCmpNaNOrdering) {
  Built B = build("class Main { static void main() { double n = 0.0; "
                  "double nan = n / n; IO.printBool(nan < 1.0); "
                  "IO.printBool(nan >= 1.0); IO.printBool(nan == nan); } }");
  EXPECT_EQ(runBC(*B.BC, *B.P), "falsefalsefalse");
}

} // namespace
