//===- tests/trycatch_test.cpp - Exception handling tests -----*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §7 exception translation: try bodies split into linked
/// subblocks, each potential raise point gets an implicit edge to the
/// handler's phi block. Each behavioural case runs on the SafeTSA
/// evaluator (unoptimized AND optimized), through an encode/decode round
/// trip, and on the bytecode interpreter (exception tables) — four
/// executions per expectation.
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCInterp.h"
#include "bytecode/BCVerifier.h"
#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

/// Runs `Src` four ways; requires identical termination and output.
struct Results {
  RuntimeError Err;
  std::string Output;
};

Results runAllWays(const std::string &Src) {
  auto P = compileMJ("try.mj", Src);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  if (!P->ok())
    return {RuntimeError::Internal, "<compile error>"};
  {
    TSAVerifier V(*P->TSA);
    EXPECT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front());
  }

  auto RunTSA = [&](const TSAModule &M, ClassTable &Table) {
    Runtime RT(Table);
    TSAInterpreter I(M, RT);
    ExecResult R = I.runMain();
    return Results{R.Err, RT.getOutput()};
  };

  Results Base = RunTSA(*P->TSA, *P->Table);

  // Wire round trip.
  {
    std::string Err;
    auto Unit = decodeModule(encodeModule(*P->TSA), &Err);
    EXPECT_TRUE(Unit) << Err;
    if (Unit) {
      TSAVerifier V(*Unit->Module);
      EXPECT_TRUE(V.verify());
      Results R = RunTSA(*Unit->Module, *Unit->Table);
      EXPECT_EQ(R.Err, Base.Err) << "decoded termination differs";
      EXPECT_EQ(R.Output, Base.Output) << "decoded output differs";
    }
  }

  // Bytecode with exception tables.
  {
    BCCompiler BCC(P->Types, *P->Table);
    auto BC = BCC.compile(P->AST);
    BCVerifier BV(*BC);
    EXPECT_TRUE(BV.verify())
        << (BV.getErrors().empty() ? "" : BV.getErrors().front());
    Runtime RT(*P->Table);
    BCInterpreter I(*BC, RT, P->Types);
    ExecResult R = I.runMain();
    EXPECT_EQ(R.Err, Base.Err) << "bytecode termination differs";
    EXPECT_EQ(RT.getOutput(), Base.Output) << "bytecode output differs";
  }

  // Optimized.
  {
    optimizeModule(*P->TSA);
    TSAVerifier V(*P->TSA);
    EXPECT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front());
    Results R = RunTSA(*P->TSA, *P->Table);
    EXPECT_EQ(R.Err, Base.Err) << "optimized termination differs";
    EXPECT_EQ(R.Output, Base.Output) << "optimized output differs";
  }
  return Base;
}

std::string expectOk(const std::string &Src) {
  Results R = runAllWays(Src);
  EXPECT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
  return R.Output;
}

TEST(TryCatch, CatchesDivisionByZero) {
  EXPECT_EQ(expectOk("class Main { static void main() { int z = 0; "
                     "try { IO.printInt(10 / z); IO.printStr(\"no\"); } "
                     "catch { IO.printStr(\"caught\"); } } }"),
            "caught");
}

TEST(TryCatch, CatchesNullDeref) {
  EXPECT_EQ(expectOk("class C { int v; } class Main { static void main() "
                     "{ C c = null; try { IO.printInt(c.v); } catch { "
                     "IO.printStr(\"npe\"); } } }"),
            "npe");
}

TEST(TryCatch, CatchesBoundsAndBadCast) {
  EXPECT_EQ(expectOk(
                "class A {} class B extends A {} class C extends A {} "
                "class Main { static void main() { "
                "int[] a = new int[2]; int i = 9; "
                "try { a[i] = 1; } catch { IO.printStr(\"oob \"); } "
                "A x = new C(); "
                "try { B b = (B) x; } catch { IO.printStr(\"cast \"); } "
                "int n = -1; "
                "try { int[] z = new int[n]; } catch { "
                "IO.printStr(\"neg\"); } } }"),
            "oob cast neg");
}

TEST(TryCatch, NoExceptionSkipsHandler) {
  EXPECT_EQ(expectOk("class Main { static void main() { int z = 5; "
                     "try { IO.printInt(10 / z); } "
                     "catch { IO.printStr(\"no\"); } "
                     "IO.printStr(\" done\"); } }"),
            "2 done");
}

TEST(TryCatch, VariablesReflectPartialExecution) {
  // x is updated before the raise and must carry its new value into the
  // handler (this is exactly what the catch-entry phis transport).
  EXPECT_EQ(expectOk("class Main { static void main() { int z = 0; "
                     "int x = 1; "
                     "try { x = 2; int bad = 10 / z; x = 3; } "
                     "catch { IO.printInt(x); } } }"),
            "2");
}

TEST(TryCatch, DistinctRaiseSitesYieldDistinctStates) {
  // Two raise points with different reaching definitions of x; which one
  // fires depends on runtime data.
  const char *Tmpl =
      "class Main { static void run(int z1, int z2) { int x = 1; "
      "try { x = 10 / z1; x = x + 100; x = x + 10 / z2; } "
      "catch { IO.printInt(x); IO.printStr(\"!\"); return; } "
      "IO.printInt(x); } "
      "static void main() { run(%s); } }";
  auto With = [&](const char *Args) {
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf), Tmpl, Args);
    return expectOk(Buf);
  };
  EXPECT_EQ(With("0, 1"), "1!");    // First site raises; x still 1.
  EXPECT_EQ(With("10, 0"), "101!"); // Second site; x = 1+100.
  EXPECT_EQ(With("10, 5"), "103");  // No raise.
}

TEST(TryCatch, ExceptionsUnwindOutOfCallees) {
  EXPECT_EQ(expectOk("class Main { "
                     "static int deep(int n) { "
                     "if (n == 0) { int z = 0; return 1 / z; } "
                     "return deep(n - 1); } "
                     "static void main() { "
                     "try { IO.printInt(deep(5)); } "
                     "catch { IO.printStr(\"from callee\"); } } }"),
            "from callee");
}

TEST(TryCatch, NestedTryInnermostWins) {
  EXPECT_EQ(expectOk("class Main { static void main() { int z = 0; "
                     "try { try { IO.printInt(1 / z); } "
                     "catch { IO.printStr(\"inner \"); } "
                     "IO.printInt(2 / z); } "
                     "catch { IO.printStr(\"outer\"); } } }"),
            "inner outer");
}

TEST(TryCatch, HandlerExceptionGoesToEnclosingTry) {
  EXPECT_EQ(expectOk("class Main { static void main() { int z = 0; "
                     "try { try { IO.printInt(1 / z); } "
                     "catch { IO.printStr(\"inner \"); "
                     "IO.printInt(2 / z); } } "
                     "catch { IO.printStr(\"outer\"); } } }"),
            "inner outer");
}

TEST(TryCatch, UncaughtHandlerExceptionUnwinds) {
  Results R = runAllWays("class Main { static void main() { int z = 0; "
                         "try { IO.printInt(1 / z); } "
                         "catch { IO.printStr(\"h\"); "
                         "IO.printInt(2 / z); } } }");
  EXPECT_EQ(R.Err, RuntimeError::DivisionByZero);
  EXPECT_EQ(R.Output, "h");
}

TEST(TryCatch, TryInsideLoopWithBreakAndContinue) {
  EXPECT_EQ(expectOk(
                "class Main { static void main() { int hits = 0; "
                "int[] a = new int[3]; a[0] = 5; a[1] = 0; a[2] = 7; "
                "for (int i = 0; i < 6; i++) { "
                "try { int v = 100 / a[i]; hits = hits + v; } "
                "catch { if (i >= 2) break; continue; } } "
                "IO.printInt(hits); } }"),
            "34"); // i=0: +100/5; i=1: div0 -> continue; i=2: +100/7;
                   // i=3: bounds -> break.
}

TEST(TryCatch, LoopInsideTry) {
  EXPECT_EQ(expectOk("class Main { static void main() { "
                     "int[] a = new int[4]; int s = 0; "
                     "try { for (int i = 0; ; i++) { s = s + i; "
                     "a[i] = s; } } "
                     "catch { IO.printInt(s); } } }"),
            "10"); // 0+1+2+3, then s += 4 runs before a[4] raises.
}

TEST(TryCatch, ReturnInsideTryAndHandler) {
  EXPECT_EQ(expectOk("class Main { "
                     "static int f(int z) { "
                     "try { return 10 / z; } catch { return -1; } } "
                     "static void main() { IO.printInt(f(2)); "
                     "IO.printInt(f(0)); } }"),
            "5-1");
}

TEST(TryCatch, TryWithoutPossibleRaisesIsElided) {
  // The generator drops the handler for raise-free bodies; the module
  // still verifies and behaves.
  auto P = compileMJ("try.mj",
                     "class Main { static void main() { int x = 1; "
                     "try { x = x + 2; } catch { x = 99; } "
                     "IO.printInt(x); } }");
  ASSERT_TRUE(P->ok());
  TSAVerifier V(*P->TSA);
  EXPECT_TRUE(V.verify());
  // No Try node survives.
  bool HasTry = false;
  std::function<void(const CSTSeq &)> Walk = [&](const CSTSeq &Seq) {
    for (const auto &N : Seq) {
      if (N->K == CSTNode::Kind::Try)
        HasTry = true;
      Walk(N->Then);
      Walk(N->Else);
      Walk(N->Header);
      Walk(N->Body);
    }
  };
  for (const auto &M : P->TSA->Methods)
    Walk(M->Root);
  EXPECT_FALSE(HasTry);
}

TEST(TryCatch, FuelExhaustionIsNotCatchable) {
  auto P = compileMJ("try.mj",
                     "class Main { static void main() { "
                     "try { while (true) { } } "
                     "catch { IO.printStr(\"no\"); } } }");
  ASSERT_TRUE(P->ok());
  Runtime RT(*P->Table, /*Fuel=*/10'000);
  TSAInterpreter I(*P->TSA, RT);
  EXPECT_EQ(I.runMain().Err, RuntimeError::OutOfFuel);
  EXPECT_EQ(RT.getOutput(), "");
}

TEST(TryCatch, StackOverflowIsNotCatchable) {
  Results R = runAllWays("class Main { "
                         "static int f(int n) { "
                         "try { return f(n + 1); } catch { return -1; } } "
                         "static void main() { IO.printInt(f(0)); } }");
  EXPECT_EQ(R.Err, RuntimeError::StackOverflow);
}

TEST(TryCatch, OptimizerKeepsChecksInsideTryBodies) {
  // Redundant null checks inside a try region are pinned (their removal
  // would delete exception edges); outside they are unified as usual.
  auto P = compileMJ(
      "try.mj",
      "class C { int a; int b; } class Main { static void main() { "
      "C c = new C(); "
      "int outside = c.a + c.b; "
      "try { IO.printInt(c.a + c.b); } catch { } "
      "IO.printInt(outside); } }");
  ASSERT_TRUE(P->ok());
  unsigned Before = P->TSA->countOpcode(Opcode::NullCheck);
  optimizeModule(*P->TSA);
  unsigned After = P->TSA->countOpcode(Opcode::NullCheck);
  EXPECT_LT(After, Before) << "outside-try checks should still unify";
  EXPECT_GE(After, 2u) << "in-try checks must remain pinned";
  TSAVerifier V(*P->TSA);
  EXPECT_TRUE(V.verify());
}

TEST(TryCatch, VerifierRejectsStrippedExceptionEdge) {
  auto P = compileMJ("try.mj",
                     "class Main { static void main() { int z = 0; "
                     "try { IO.printInt(1 / z); } "
                     "catch { IO.printStr(\"c\"); } } }");
  ASSERT_TRUE(P->ok());
  // Clear a RaisesToCatch flag: the raising instruction loses its edge.
  bool Cleared = false;
  std::function<void(CSTSeq &)> Walk = [&](CSTSeq &Seq) {
    for (auto &N : Seq) {
      if (N->RaisesToCatch && !Cleared) {
        N->RaisesToCatch = false;
        Cleared = true;
      }
      Walk(N->Then);
      Walk(N->Else);
      Walk(N->Header);
      Walk(N->Body);
    }
  };
  for (const auto &M : P->TSA->Methods)
    Walk(const_cast<CSTSeq &>(M->Root));
  ASSERT_TRUE(Cleared);
  TSAVerifier V(*P->TSA);
  EXPECT_FALSE(V.verify());
}

TEST(TryCatch, VerifierRejectsForgedExceptionEdge) {
  auto P = compileMJ("try.mj",
                     "class Main { static void main() { int z = 1; "
                     "try { IO.printInt(1 / z); IO.printInt(z + 1); } "
                     "catch { IO.printStr(\"c\"); } } }");
  ASSERT_TRUE(P->ok());
  // Flag a block that does NOT end with a raising instruction.
  bool Forged = false;
  std::function<void(CSTSeq &, bool)> Walk = [&](CSTSeq &Seq, bool InTry) {
    for (auto &N : Seq) {
      if (N->K == CSTNode::Kind::Basic && InTry && !N->RaisesToCatch &&
          !Forged && N->BB && !N->BB->Insts.empty() &&
          !N->BB->Insts.back()->mayRaise()) {
        N->RaisesToCatch = true;
        Forged = true;
      }
      Walk(N->Then, InTry || N->K == CSTNode::Kind::Try);
      Walk(N->Else, InTry && N->K != CSTNode::Kind::Try);
      Walk(N->Header, InTry);
      Walk(N->Body, InTry);
    }
  };
  for (const auto &M : P->TSA->Methods)
    Walk(const_cast<CSTSeq &>(M->Root), false);
  if (!Forged)
    GTEST_SKIP() << "no unflagged in-try block available";
  TSAVerifier V(*P->TSA);
  EXPECT_FALSE(V.verify());
}

} // namespace
