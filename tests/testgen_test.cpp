//===- tests/testgen_test.cpp - Differential generator tests --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The grammar-aware differential test generator (DESIGN.md §15), proved
/// five ways:
///
///  1. Soak parity: a fixed seed range (default 200, SAFETSA_GEN_SEEDS
///     overrides) runs the full 14-configuration matrix — tree-walk
///     oracle vs tier 0 vs tier 1 (± fusion, ± inlining, budget-maxed),
///     scalar vs table decode, optimized vs not, GC stress, round-trip
///     digest — with byte-exact output parity on every seed.
///  2. Determinism: the same seed yields byte-identical source and wire
///     bytes in-process and across two separate process runs (the
///     safetsa-gen binary, exercised over a pipe).
///  3. Replay: a failure on config K is reproduced byte-exactly by a
///     single-seed, single-config re-run (proved via the injected-
///     failure hook, so the machinery is tested without a compiler bug).
///  4. Reproducers: failures dump a self-contained .mj file (metadata as
///     comments, so it compiles as-is) and the greedy shrinker produces
///     a smaller program that still fails.
///  5. Coverage: the generated corpus actually contains the shapes the
///     matrix is meant to light up — inheritance, virtual calls, loops,
///     try/catch, arrays, instanceof/cast, allocation churn.
///
/// Plus the regression named after the first soak-found bug (seed 2229):
/// a `new int[huge]` from wrapped arithmetic must trap OutOfMemory
/// before committing host memory, identically in every tier.
///
/// Registered as `ctest -L gen` with _asan/_tsan variants.
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"
#include "support/Digest.h"
#include "testgen/DifferentialRunner.h"
#include "testgen/Generator.h"
#include "testgen/Shrinker.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace safetsa;
using namespace safetsa::testgen;

namespace {

unsigned soakSeeds() {
  if (const char *Env = std::getenv("SAFETSA_GEN_SEEDS"))
    if (unsigned N = unsigned(std::strtoul(Env, nullptr, 10)))
      return N;
  return 200;
}

std::string tempDir(const char *Tag) {
  std::string D = (std::filesystem::temp_directory_path() /
                   (std::string("safetsa_testgen_") + Tag))
                      .string();
  std::filesystem::remove_all(D);
  return D;
}

std::string slurp(const std::string &Path) {
  std::ifstream F(Path);
  std::ostringstream SS;
  SS << F.rdbuf();
  return SS.str();
}

//===----------------------------------------------------------------------===//
// 1. Soak parity
//===----------------------------------------------------------------------===//

TEST(TestGenSoak, FixedSeedSweepFullMatrixParity) {
  const unsigned N = soakSeeds();
  DifferentialRunner Runner;
  unsigned Ok = 0, FuelSkipped = 0;
  for (unsigned S = 0; S != N; ++S) {
    SeedReport R = Runner.run(S);
    ASSERT_TRUE(R.CompileOk) << R.summary();
    if (R.FuelBound) {
      ++FuelSkipped;
      continue;
    }
    ASSERT_TRUE(R.ok()) << R.summary();
    EXPECT_EQ(R.ConfigsRun, DifferentialRunner::configCount());
    ++Ok;
  }
  // Fuel-bound programs are legal but must stay the exception, or the
  // sweep stops exercising the matrix.
  EXPECT_GE(Ok * 10, N * 9) << Ok << " ok / " << FuelSkipped
                            << " fuel-skipped of " << N;
}

//===----------------------------------------------------------------------===//
// 2. Determinism
//===----------------------------------------------------------------------===//

TEST(TestGenDeterminism, SameSeedSameSourceInProcess) {
  for (uint64_t S : {0ull, 7ull, 42ull, 2229ull, 123456789ull}) {
    std::string A = generateProgram(S);
    std::string B = generateProgram(S);
    EXPECT_EQ(A, B) << "seed " << S;
    EXPECT_FALSE(A.empty());
  }
  EXPECT_NE(generateProgram(1), generateProgram(2));
}

TEST(TestGenDeterminism, SameSeedSameWireBytes) {
  for (uint64_t S : {3ull, 99ull}) {
    std::string Src = generateProgram(S);
    auto P1 = compileMJ("a.mj", Src);
    auto P2 = compileMJ("b.mj", Src);
    ASSERT_TRUE(P1->ok() && P2->ok()) << "seed " << S;
    std::vector<uint8_t> W1 = encodeModule(*P1->TSA);
    std::vector<uint8_t> W2 = encodeModule(*P2->TSA);
    EXPECT_EQ(W1, W2) << "seed " << S;
    EXPECT_EQ(digestOf(ByteSpan(W1)).hex(), digestOf(ByteSpan(W2)).hex());
  }
}

#ifdef SAFETSA_GEN_BIN
std::string runGen(const std::string &Args) {
  std::string Cmd = std::string(SAFETSA_GEN_BIN) + " " + Args + " 2>/dev/null";
  FILE *P = popen(Cmd.c_str(), "r");
  if (!P)
    return "<popen failed>";
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof Buf, P)) > 0)
    Out.append(Buf, N);
  pclose(P);
  return Out;
}

TEST(TestGenDeterminism, SameSeedSameBytesAcrossProcesses) {
  // Two independent process invocations: byte-identical source and wire
  // digest. This is the determinism contract scripts and CI rely on.
  std::string S1 = runGen("--seed 11 --emit-source");
  std::string S2 = runGen("--seed 11 --emit-source");
  ASSERT_FALSE(S1.empty());
  EXPECT_EQ(S1, S2);
  EXPECT_EQ(S1, generateProgram(11)) << "CLI and library disagree";

  std::string D1 = runGen("--seed 11 --emit-digest");
  std::string D2 = runGen("--seed 11 --emit-digest");
  ASSERT_FALSE(D1.empty());
  EXPECT_EQ(D1, D2);
}
#endif // SAFETSA_GEN_BIN

//===----------------------------------------------------------------------===//
// 3. Single-config replay
//===----------------------------------------------------------------------===//

TEST(TestGenReplay, InjectedFailureIsCaughtAndReplaysByConfig) {
  // Inject a divergence into config 9 (tier1/noinlining): the full
  // matrix must flag exactly that config, a single-config replay of 9
  // must reproduce it, and a replay of any other config must pass.
  RunnerOptions Opts;
  Opts.InjectFailure = 9;
  DifferentialRunner Full(Opts);
  SeedReport R = Full.run(5);
  ASSERT_TRUE(R.CompileOk);
  ASSERT_FALSE(R.FuelBound) << "pick a non-fuel-bound seed";
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Config, 9u);
  EXPECT_EQ(R.Failures[0].Name, "tier1/noinlining");

  Opts.OnlyConfig = 9;
  SeedReport Replay = DifferentialRunner(Opts).run(5);
  ASSERT_EQ(Replay.Failures.size(), 1u);
  EXPECT_EQ(Replay.Failures[0].Config, 9u);
  // Byte-exact: the replayed divergence renders identically.
  EXPECT_EQ(Replay.Failures[0].Detail, R.Failures[0].Detail);

  Opts.OnlyConfig = 8;
  EXPECT_TRUE(DifferentialRunner(Opts).run(5).ok());
}

TEST(TestGenReplay, DigestConfigInjection) {
  RunnerOptions Opts;
  Opts.InjectFailure = 13;
  SeedReport R = DifferentialRunner(Opts).run(5);
  ASSERT_EQ(R.Failures.size(), 1u);
  EXPECT_EQ(R.Failures[0].Config, 13u);
  EXPECT_NE(R.Failures[0].Detail.find("digest"), std::string::npos);
}

TEST(TestGenReplay, ConfigTableIsFrozen) {
  // Reproducer files reference configs by index; renumbering breaks
  // every dumped replay command. Pin the table.
  ASSERT_EQ(DifferentialRunner::configCount(), 14u);
  EXPECT_STREQ(DifferentialRunner::configName(0), "treewalk/source");
  EXPECT_STREQ(DifferentialRunner::configName(2), "treewalk/decoded-scalar");
  EXPECT_STREQ(DifferentialRunner::configName(6), "tier0/gcstress");
  EXPECT_STREQ(DifferentialRunner::configName(7), "tier1");
  EXPECT_STREQ(DifferentialRunner::configName(10), "tier1/maxinline");
  EXPECT_STREQ(DifferentialRunner::configName(12), "tier1/optimized-decoded");
  EXPECT_STREQ(DifferentialRunner::configName(13), "roundtrip-digest");
}

//===----------------------------------------------------------------------===//
// 4. Reproducer dump + shrinker
//===----------------------------------------------------------------------===//

TEST(TestGenRepro, FailureDumpsCompilableReproducerAndShrinks) {
  std::string Dir = tempDir("repro");
  RunnerOptions Opts;
  Opts.InjectFailure = 7;
  Opts.DumpDir = Dir;
  Opts.Shrink = true;
  SeedReport R = DifferentialRunner(Opts).run(5);
  ASSERT_FALSE(R.Failures.empty());

  ASSERT_FALSE(R.ReproPath.empty());
  std::string Dump = slurp(R.ReproPath);
  EXPECT_NE(Dump.find("// seed: 5"), std::string::npos);
  EXPECT_NE(Dump.find("// failing config 7 (tier1)"), std::string::npos);
  EXPECT_NE(Dump.find("--seed 5 --config 7"), std::string::npos);
  // Self-contained: metadata rides as comments, the file compiles as-is.
  EXPECT_TRUE(compileMJ("repro.mj", Dump)->ok());

  // The injected failure reproduces on every program, so the shrinker
  // can strip the source down hard; what remains must still compile.
  ASSERT_FALSE(R.MinimizedPath.empty());
  std::string Min = slurp(R.MinimizedPath);
  EXPECT_LT(Min.size(), generateProgram(5).size());
  EXPECT_TRUE(compileMJ("min.mj", Min)->ok());

  std::filesystem::remove_all(Dir);
}

TEST(TestGenRepro, ShrinkerGreedyOnPlainPredicate) {
  // Shrinker unit contract, no runner involved: keep only what the
  // predicate pins. The marker line survives, unrelated statements and
  // whole unrelated regions go.
  std::string Src = "class A {\n"
                    "  int f;\n"
                    "  int g;\n"
                    "}\n"
                    "class Main {\n"
                    "  static void main() {\n"
                    "    int keep = 1;\n"
                    "    int drop1 = 2;\n"
                    "    if (true) {\n"
                    "      int drop2 = 3;\n"
                    "    }\n"
                    "  }\n"
                    "}\n";
  ShrinkStats Stats;
  std::string Min = shrinkSource(
      Src,
      [](const std::string &S) {
        return S.find("keep") != std::string::npos &&
               compileMJ("s.mj", S)->ok();
      },
      200, &Stats);
  EXPECT_NE(Min.find("keep"), std::string::npos);
  EXPECT_EQ(Min.find("drop1"), std::string::npos);
  EXPECT_EQ(Min.find("drop2"), std::string::npos);
  EXPECT_EQ(Min.find("class A"), std::string::npos);
  EXPECT_GT(Stats.Accepted, 0u);
  EXPECT_TRUE(compileMJ("m.mj", Min)->ok());
}

TEST(TestGenRepro, ShrinkerReturnsInputWhenNothingRemovable) {
  std::string Src = "class Main {\n  static void main() {\n  }\n}\n";
  std::string Min = shrinkSource(
      Src, [](const std::string &S) { return compileMJ("s.mj", S)->ok(); },
      50);
  EXPECT_TRUE(compileMJ("m.mj", Min)->ok());
}

//===----------------------------------------------------------------------===//
// 5. Grammar coverage
//===----------------------------------------------------------------------===//

TEST(TestGenCoverage, CorpusContainsEveryTargetShape) {
  std::string All;
  for (uint64_t S = 0; S != 100; ++S)
    All += generateProgram(S);
  // The shapes the matrix is built to light up: single inheritance and
  // overrides (inline caches, devirt guards), loops with back edges
  // (safepoints, re-quickening), try/catch (exception stubs), arrays and
  // index traps, instanceof/cast, null checks, allocation churn (GC),
  // static helper chains (speculative inlining).
  for (const char *Shape :
       {"extends", "try {", "} catch {", "for (", "while (", "new int[",
        "instanceof", "(C0)", "null", ".next", "static int s0",
        "IO.printInt", "IO.printDouble", "IO.printBool", "new C", "objs[",
        "int[] data", "/ (", "this"})
    EXPECT_NE(All.find(Shape), std::string::npos) << Shape;
}

TEST(TestGenCoverage, EveryEarlySeedCompilesAndVerifies) {
  for (uint64_t S = 0; S != 50; ++S) {
    auto P = compileMJ("gen.mj", generateProgram(S));
    ASSERT_TRUE(P->ok()) << "seed " << S << ":\n" << P->renderDiagnostics();
    ASSERT_NE(P->TSA, nullptr);
  }
}

//===----------------------------------------------------------------------===//
// Regression: seed 2229 (first 10k soak)
//===----------------------------------------------------------------------===//

TEST(TestGenRegression, Seed2229HugeArrayAllocTrapsBeforeCommitting) {
  // Seed 2229 feeds a wrapped-arithmetic int (~2 billion) into a risky
  // `new int[a]`; before the per-allocation budget cap this committed
  // tens of GB of host memory inside every configuration. The whole
  // matrix must now agree and terminate.
  SeedReport R = DifferentialRunner().run(2229);
  EXPECT_TRUE(R.ok() || R.FuelBound) << R.summary();
}

TEST(TestGenRegression, OutOfMemoryTrapsUniformlyAcrossTiers) {
  // Directly pin the new trap: an allocation that cannot fit the heap
  // budget raises OutOfMemoryError (uncatchable — no collection could
  // make room) without committing the backing store, in the tree-walk
  // interpreter and both prepared tiers alike.
  const std::string Src = "class Main {\n"
                          "  static void main() {\n"
                          "    int n = 2000000000;\n"
                          "    try { int[] a = new int[n]; IO.printInt(a.length); } catch {\n"
                          "      IO.printStr(\"caught\"); IO.println();\n"
                          "    }\n"
                          "    IO.printStr(\"after\"); IO.println();\n"
                          "  }\n"
                          "}\n";
  auto P = compileMJ("oom.mj", Src);
  ASSERT_TRUE(P->ok()) << P->renderDiagnostics();

  auto treewalk = [&] {
    Runtime RT(*P->Table);
    TSAInterpreter I(*P->TSA, RT);
    ExecResult R = I.runMain();
    return std::make_pair(R.Err, RT.getOutput());
  };
  auto [Err, Out] = treewalk();
  EXPECT_EQ(Err, RuntimeError::OutOfMemory);
  EXPECT_EQ(Out, ""); // Uncatchable: the catch block must NOT run.
  EXPECT_FALSE(isCatchableError(RuntimeError::OutOfMemory));
  EXPECT_STREQ(runtimeErrorName(RuntimeError::OutOfMemory),
               "OutOfMemoryError");

  for (int Tier : {0, 1}) {
    auto T0 = prepareModule(*P->TSA);
    ASSERT_NE(T0, nullptr);
    const PreparedModule *PM = T0.get();
    std::unique_ptr<PreparedModule> T1;
    if (Tier == 1) {
      {
        Runtime RT(*P->Table);
        TSAExec X(*T0, RT);
        X.runMain();
      }
      T1 = reprepareModule(*T0);
      ASSERT_NE(T1, nullptr);
      PM = T1.get();
    }
    Runtime RT(*P->Table);
    TSAExec X(*PM, RT);
    ExecResult R = X.runMain();
    EXPECT_EQ(R.Err, RuntimeError::OutOfMemory) << "tier " << Tier;
    EXPECT_EQ(RT.getOutput(), "") << "tier " << Tier;
  }
}

//===----------------------------------------------------------------------===//
// Wire-level matrix (the fuzz_test survivor entry point)
//===----------------------------------------------------------------------===//

TEST(TestGenWire, CheckWireAcceptsGeneratedModules) {
  DifferentialRunner Runner;
  for (uint64_t S : {1ull, 9ull, 17ull}) {
    auto P = compileMJ("gen.mj", generateProgram(S));
    ASSERT_TRUE(P->ok());
    std::vector<uint8_t> Wire = encodeModule(*P->TSA);
    std::string Detail;
    EXPECT_TRUE(Runner.checkWire(Wire, "seed " + std::to_string(S), &Detail))
        << Detail;
  }
}

TEST(TestGenWire, CheckWireDumpsOnFailure) {
  // A wire image that fails to decode is reported with a detail string;
  // with a dump dir set, the bytes and the detail land on disk keyed by
  // content digest.
  std::string Dir = tempDir("wire");
  RunnerOptions Opts;
  Opts.DumpDir = Dir;
  DifferentialRunner Runner(Opts);
  std::vector<uint8_t> Junk = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01};
  std::string Detail;
  EXPECT_FALSE(Runner.checkWire(Junk, "junk", &Detail));
  EXPECT_NE(Detail.find("junk"), std::string::npos);
  std::string Stem = Dir + "/wire_" + digestOf(ByteSpan(Junk)).hex();
  EXPECT_TRUE(std::filesystem::exists(Stem + ".bin"));
  EXPECT_TRUE(std::filesystem::exists(Stem + ".txt"));
  std::filesystem::remove_all(Dir);
}

} // namespace
