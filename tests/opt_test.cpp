//===- tests/opt_test.cpp - Optimizer unit tests --------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Targeted checks for each pass: constant folding results, the
/// dominator-scoped CSE with the Mem variable (what may and may not be
/// unified across stores/calls/joins), check elimination, and DCE — plus
/// semantics preservation on every mutation (the differential suite
/// covers whole programs; these pin down pass-level behaviour).
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

using namespace safetsa;

namespace {

struct Opt {
  std::unique_ptr<CompiledProgram> P;
  OptStats Stats;
  std::string OutputBefore, OutputAfter;

  unsigned count(Opcode Op) const { return P->TSA->countOpcode(Op); }
};

std::string run(CompiledProgram &P) {
  Runtime RT(*P.Table);
  TSAInterpreter I(*P.TSA, RT);
  ExecResult R = I.runMain();
  EXPECT_EQ(R.Err, RuntimeError::None) << runtimeErrorName(R.Err);
  return RT.getOutput();
}

Opt optimize(const std::string &Src, OptOptions Options = {}) {
  Opt O;
  O.P = compileMJ("opt.mj", Src);
  EXPECT_TRUE(O.P->ok()) << O.P->renderDiagnostics();
  O.OutputBefore = run(*O.P);
  O.Stats = optimizeModule(*O.P->TSA, Options);
  TSAVerifier V(*O.P->TSA);
  EXPECT_TRUE(V.verify()) << (V.getErrors().empty()
                                  ? ""
                                  : V.getErrors().front());
  O.OutputAfter = run(*O.P);
  EXPECT_EQ(O.OutputBefore, O.OutputAfter) << "optimization changed output";
  return O;
}

//===----------------------------------------------------------------------===//
// Constant propagation
//===----------------------------------------------------------------------===//

TEST(Opt, FoldsConstantArithmetic) {
  Opt O = optimize("class Main { static void main() { "
                   "IO.printInt(2 * 3 + 4 * 5 - 1); } }");
  EXPECT_GE(O.Stats.FoldedConstants, 3u);
  // Only the call remains (plus preloads).
  EXPECT_EQ(O.count(Opcode::Primitive), 0u);
}

TEST(Opt, FoldsTransitively) {
  // a and b fold, enabling a+b to fold too.
  Opt O = optimize("class Main { static void main() { "
                   "int a = 1 + 2; int b = a * 4; IO.printInt(a + b); } }");
  EXPECT_EQ(O.count(Opcode::Primitive), 0u);
}

TEST(Opt, FoldsComparisonsAndBooleans) {
  Opt O = optimize("class Main { static void main() { "
                   "IO.printBool(3 < 4); IO.printBool(!(2 == 2)); } }");
  EXPECT_EQ(O.count(Opcode::Primitive), 0u);
}

TEST(Opt, DoesNotFoldDivisionByZero) {
  // The runtime exception must be preserved, not folded away.
  auto P = compileMJ("opt.mj", "class Main { static void main() { "
                               "IO.printInt(1 / 0); } }");
  ASSERT_TRUE(P->ok());
  optimizeModule(*P->TSA);
  EXPECT_EQ(P->TSA->countOpcode(Opcode::XPrimitive), 1u);
  Runtime RT(*P->Table);
  TSAInterpreter I(*P->TSA, RT);
  EXPECT_EQ(I.runMain().Err, RuntimeError::DivisionByZero);
}

TEST(Opt, FoldsDoubleMath) {
  Opt O = optimize("class Main { static void main() { "
                   "IO.printDouble(0.5 * 4.0 + 1.0); } }");
  EXPECT_EQ(O.count(Opcode::Primitive), 0u);
  EXPECT_EQ(O.OutputAfter, "3");
}

//===----------------------------------------------------------------------===//
// CSE
//===----------------------------------------------------------------------===//

// Parameters keep the operands opaque so constant propagation does not
// pre-empt CSE in these tests.
TEST(Opt, UnifiesPureExpressions) {
  Opt O = optimize("class Main { static void f(int a, int b) { "
                   "IO.printInt(a * b); IO.printInt(a * b); } "
                   "static void main() { f(6, 7); } }");
  EXPECT_GE(O.Stats.CSERemoved, 1u);
  unsigned Muls = 0;
  for (const auto &M : O.P->TSA->Methods)
    M->forEachInstruction([&](const Instruction &I) {
      if (I.Op == Opcode::Primitive && I.Prim == PrimOp::MulI)
        ++Muls;
    });
  EXPECT_EQ(Muls, 1u);
}

TEST(Opt, UnifiesAcrossDominators) {
  // The computation in the if-arm reuses the one before the branch.
  Opt O = optimize(
      "class Main { static void f(int a, int b) { "
      "int x = a * b; if (x > 0) { IO.printInt(a * b); } } "
      "static void main() { f(6, 7); } }");
  unsigned Muls = 0;
  for (const auto &M : O.P->TSA->Methods)
    M->forEachInstruction([&](const Instruction &I) {
      if (I.Op == Opcode::Primitive && I.Prim == PrimOp::MulI)
        ++Muls;
    });
  EXPECT_EQ(Muls, 1u);
}

TEST(Opt, DoesNotUnifyAcrossBranches) {
  // Sibling arms do not dominate each other; both multiplies stay.
  Opt O = optimize(
      "class Main { static void f(int a, int b) { "
      "if (a < b) { IO.printInt(a * b); } else { IO.printInt(a * b); } } "
      "static void main() { f(6, 7); } }");
  unsigned Muls = 0;
  for (const auto &M : O.P->TSA->Methods)
    M->forEachInstruction([&](const Instruction &I) {
      if (I.Op == Opcode::Primitive && I.Prim == PrimOp::MulI)
        ++Muls;
    });
  EXPECT_EQ(Muls, 2u);
}

TEST(Opt, RedundantLoadsUnifiedUntilStore) {
  Opt O = optimize(
      "class C { int v; } class Main { static void main() { "
      "C c = new C(); c.v = 3; int a = c.v; int b = c.v; "
      "c.v = 4; int d = c.v; IO.printInt(a + b + d); } }");
  // Loads before the second store unify; the post-store load must remain.
  unsigned Loads = 0;
  for (const auto &M : O.P->TSA->Methods)
    Loads += M->countOpcode(Opcode::GetField);
  EXPECT_EQ(Loads, 2u);
  EXPECT_EQ(O.OutputAfter, "10");
}

TEST(Opt, CallsClobberMemory) {
  Opt O = optimize(
      "class C { static int g; static void poke() { g = g + 1; } } "
      "class Main { static void main() { C.g = 5; int a = C.g; "
      "C.poke(); int b = C.g; IO.printInt(a + b); } }");
  unsigned Loads = 0;
  for (const auto &M : O.P->TSA->Methods)
    if (M->Symbol->Name == "main")
      Loads = M->countOpcode(Opcode::GetStatic);
  EXPECT_EQ(Loads, 2u) << "load across a call must not be unified";
  EXPECT_EQ(O.OutputAfter, "11");
}

TEST(Opt, ArrayLengthIsImmutableAcrossStores) {
  // a.length is CSE-able even across element stores.
  Opt O = optimize(
      "class Main { static void main() { int[] a = new int[5]; "
      "int x = a.length; a[0] = 9; int y = a.length; "
      "IO.printInt(x + y); } }");
  unsigned Lens = 0;
  for (const auto &M : O.P->TSA->Methods)
    Lens += M->countOpcode(Opcode::ArrayLength);
  EXPECT_EQ(Lens, 1u);
}

TEST(Opt, FieldSensitiveMemKeepsUnrelatedLoads) {
  const char *Src =
      "class C { int v; int w; } class Main { static void main() { "
      "C c = new C(); c.v = 1; int a = c.w; c.v = 2; int b = c.w; "
      "IO.printInt(a + b + c.v); } }";
  // Insensitive: the store to v kills the load of w.
  Opt Coarse = optimize(Src);
  unsigned CoarseLoads = 0;
  for (const auto &M : Coarse.P->TSA->Methods)
    CoarseLoads += M->countOpcode(Opcode::GetField);
  // Field-sensitive (§8 outlook): loads of w unify across stores to v.
  OptOptions FS;
  FS.FieldSensitiveMem = true;
  Opt Fine = optimize(Src, FS);
  unsigned FineLoads = 0;
  for (const auto &M : Fine.P->TSA->Methods)
    FineLoads += M->countOpcode(Opcode::GetField);
  EXPECT_LT(FineLoads, CoarseLoads);
}

TEST(Opt, FieldSensitiveMemSameFieldStoreStillClobbers) {
  // Sensitivity is per field, not per object: a store to v must still
  // kill earlier loads of v.
  OptOptions FS;
  FS.FieldSensitiveMem = true;
  Opt O = optimize(
      "class C { int v; } class Main { static void main() { "
      "C c = new C(); c.v = 1; int a = c.v; c.v = 2; int b = c.v; "
      "IO.printInt(a + b); } }",
      FS);
  unsigned Loads = 0;
  for (const auto &M : O.P->TSA->Methods)
    Loads += M->countOpcode(Opcode::GetField);
  EXPECT_EQ(Loads, 2u) << "load of v across a store to v must survive";
  EXPECT_EQ(O.OutputAfter, "3");
}

TEST(Opt, FieldSensitiveMemIsConservativeAcrossObjects) {
  // The partition key is the FieldSymbol alone (no points-to analysis),
  // so a store to d.v must clobber a pending load of c.v — c and d may
  // alias for all the pass knows.
  OptOptions FS;
  FS.FieldSensitiveMem = true;
  Opt O = optimize(
      "class C { int v; } class Main { static void main() { "
      "C c = new C(); C d = new C(); c.v = 7; int a = c.v; "
      "d.v = 9; int b = c.v; IO.printInt(a + b); } }",
      FS);
  unsigned Loads = 0;
  for (const auto &M : O.P->TSA->Methods)
    Loads += M->countOpcode(Opcode::GetField);
  EXPECT_EQ(Loads, 2u) << "possible alias: second load of v must survive";
  EXPECT_EQ(O.OutputAfter, "14");
}

TEST(Opt, FieldSensitiveMemPreservesCorpusSemantics) {
  // Whole-corpus differential: optimizing with the finer memory
  // partition never changes observable behaviour (output or trap).
  OptOptions FS;
  FS.FieldSensitiveMem = true;
  for (const CorpusProgram &P : getCorpus()) {
    SCOPED_TRACE(P.Name);
    auto Before = compileMJ(P.Name, P.Source);
    ASSERT_TRUE(Before->ok()) << Before->renderDiagnostics();
    Runtime RTB(*Before->Table);
    TSAInterpreter IB(*Before->TSA, RTB);
    ExecResult RB = IB.runMain();

    auto After = compileMJ(P.Name, P.Source);
    ASSERT_TRUE(After->ok());
    optimizeModule(*After->TSA, FS);
    TSAVerifier V(*After->TSA);
    ASSERT_TRUE(V.verify())
        << (V.getErrors().empty() ? "" : V.getErrors().front());
    Runtime RTA(*After->Table);
    TSAInterpreter IA(*After->TSA, RTA);
    ExecResult RA = IA.runMain();

    EXPECT_EQ(RA.Err, RB.Err) << runtimeErrorName(RA.Err);
    EXPECT_EQ(RTA.getOutput(), RTB.getOutput());
  }
}

//===----------------------------------------------------------------------===//
// Check elimination (the Figure 6 mechanism)
//===----------------------------------------------------------------------===//

TEST(Opt, RedundantNullChecksEliminated) {
  Opt O = optimize(
      "class C { int a; int b; int c; } class Main { static void main() { "
      "C x = new C(); x.a = 1; x.b = 2; x.c = 3; "
      "IO.printInt(x.a + x.b + x.c); } }");
  EXPECT_GE(O.Stats.CSERemovedNullChecks, 4u);
  unsigned Checks = 0;
  for (const auto &M : O.P->TSA->Methods)
    if (M->Symbol->Name == "main")
      Checks = M->countOpcode(Opcode::NullCheck);
  EXPECT_EQ(Checks, 1u) << "one certificate should serve all six accesses";
}

TEST(Opt, RedundantIndexChecksEliminated) {
  Opt O = optimize(
      "class Main { static void main() { int[] a = new int[4]; int i = 2; "
      "a[i] = 5; IO.printInt(a[i] + a[i]); } }");
  unsigned Checks = 0;
  for (const auto &M : O.P->TSA->Methods)
    Checks += M->countOpcode(Opcode::IndexCheck);
  EXPECT_EQ(Checks, 1u);
  EXPECT_GE(O.Stats.CSERemovedIndexChecks, 2u);
}

TEST(Opt, DifferentIndicesKeepTheirChecks) {
  Opt O = optimize(
      "class Main { static void main() { int[] a = new int[4]; "
      "a[1] = 5; a[2] = 6; IO.printInt(a[1] + a[2]); } }");
  unsigned Checks = 0;
  for (const auto &M : O.P->TSA->Methods)
    Checks += M->countOpcode(Opcode::IndexCheck);
  EXPECT_EQ(Checks, 2u) << "distinct index values need distinct checks";
}

TEST(Opt, ChecksOnDistinctArraysKept) {
  Opt O = optimize(
      "class Main { static void main() { int[] a = new int[2]; "
      "int[] b = new int[2]; a[0] = 1; b[0] = 2; "
      "IO.printInt(a[0] + b[0]); } }");
  unsigned Null = 0;
  for (const auto &M : O.P->TSA->Methods)
    Null += M->countOpcode(Opcode::NullCheck);
  EXPECT_EQ(Null, 2u);
}

TEST(Opt, LiveChecksNeverRemoved) {
  // A single out-of-bounds access: its check must survive optimization.
  auto P = compileMJ("opt.mj",
                     "class Main { static void main() { int[] a = "
                     "new int[1]; int i = 5; IO.printInt(a[i]); } }");
  ASSERT_TRUE(P->ok());
  optimizeModule(*P->TSA);
  EXPECT_EQ(P->TSA->countOpcode(Opcode::IndexCheck), 1u);
  Runtime RT(*P->Table);
  TSAInterpreter I(*P->TSA, RT);
  EXPECT_EQ(I.runMain().Err, RuntimeError::IndexOutOfBounds);
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

TEST(Opt, RemovesUnusedPureValues) {
  Opt O = optimize("class Main { static void main() { int a = 6 & 2; "
                   "int unused = a * a + 3; IO.printInt(1); } }");
  EXPECT_EQ(O.count(Opcode::Primitive), 0u);
  EXPECT_GE(O.Stats.DCERemoved + O.Stats.FoldedConstants, 2u);
}

TEST(Opt, CollapsesTrivialPhis) {
  // `k` is merged but never modified: its header phi is trivial.
  Opt O = optimize(
      "class Main { static void main() { int k = 3; int s = 0; "
      "for (int i = 0; i < 4; i++) { s = s + k; } "
      "IO.printInt(s); } }");
  EXPECT_GE(O.Stats.DCERemovedPhis, 1u);
  // Only s and i still need header phis.
  unsigned Phis = 0;
  for (const auto &M : O.P->TSA->Methods)
    Phis += M->countOpcode(Opcode::Phi);
  EXPECT_EQ(Phis, 2u);
}

TEST(Opt, KeepsSideEffectsAndIO) {
  Opt O = optimize("class C { static int g; } "
                   "class Main { static void main() { C.g = 42; "
                   "IO.printInt(C.g); } }");
  unsigned Stores = 0;
  for (const auto &M : O.P->TSA->Methods)
    Stores += M->countOpcode(Opcode::SetStatic);
  EXPECT_EQ(Stores, 1u);
  EXPECT_EQ(O.OutputAfter, "42");
}

TEST(Opt, UnusedParamAndConstPreloadsRemoved) {
  Opt O = optimize("class Main { static int f(int used, int unused) "
                   "{ return used; } "
                   "static void main() { IO.printInt(f(1, 2)); } }");
  for (const auto &M : O.P->TSA->Methods) {
    if (M->Symbol->Name != "f")
      continue;
    unsigned Params = 0;
    M->forEachInstruction([&](const Instruction &I) {
      if (I.Op == Opcode::Param)
        ++Params;
    });
    EXPECT_EQ(Params, 1u);
  }
}

TEST(Opt, IdempotentOnSecondRun) {
  const CorpusProgram *Scanner = findCorpusProgram("Scanner");
  ASSERT_NE(Scanner, nullptr);
  Opt O = optimize(Scanner->Source);
  unsigned After1 = O.P->TSA->countInstructions();
  OptStats S2 = optimizeModule(*O.P->TSA);
  EXPECT_EQ(O.P->TSA->countInstructions(), After1);
  EXPECT_EQ(S2.CSERemoved, 0u);
  EXPECT_EQ(S2.DCERemoved, 0u);
}

} // namespace
