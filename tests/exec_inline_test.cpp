//===- tests/exec_inline_test.cpp - Speculative inlining tests -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tier-1 speculative inlining (DESIGN.md §14), proved five ways:
///
///  1. Differential parity: with inlining forced onto every eligible
///     site (InlineBudget maxed), tier 1 agrees with the definitional
///     tree-walker on the full corpus — outputs and trap points.
///  2. Structure: a flattened static leaf call leaves an EnterInline
///     and an InlineRet exit and no CallUnit; the NoInlining option and
///     the SAFETSA_EXEC_NOINLINE env var both restore the call.
///  3. Guarded splices: a profiled-mono site keeps a GuardInline whose
///     receiver miss takes the out-of-line DispatchMono fallback (and
///     counts InlineGuardMisses), with no deoptimization anywhere.
///  4. Unwind: traps raised inside an inlined body — caught, uncaught,
///     and at the stack-depth limit — agree with the oracle, and the
///     activation ledger stays exact across the longjmp-free unwind.
///  5. GC: collect-at-every-allocation stress across inlined frames
///     (merged RefSlots) neither crashes nor changes observable output.
///
/// Plus the profile-counter saturation boundary (satellite of the same
/// change): tallies stop at ProfileData::kSaturate instead of wrapping.
///
/// Registered under `ctest -L exec` with _asan/_tsan variants.
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/ExecUnit.h"
#include "exec/TSAInterp.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace safetsa;

namespace {

struct Outcome {
  RuntimeError Err = RuntimeError::None;
  std::string Output;
};

Outcome runTreeWalk(const TSAModule &M, ClassTable &Table) {
  Runtime RT(Table);
  TSAInterpreter I(M, RT);
  ExecResult R = I.runMain();
  return {R.Err, RT.getOutput()};
}

Outcome runModule(const PreparedModule &PM, ClassTable &Table,
                  const GcOptions &Gc = {}) {
  Runtime RT(Table, 200'000'000, Gc);
  TSAExec X(PM, RT);
  ExecResult R = X.runMain();
  return {R.Err, RT.getOutput()};
}

/// Every call site the heuristics would ever take: no size ceiling.
PrepareOptions forcedInline() {
  PrepareOptions O;
  O.InlineBudget = 0x7fffffff;
  return O;
}

/// Profile once at tier 0, then re-quicken with \p Opts.
std::unique_ptr<PreparedModule> tier1AfterOneRun(const TSAModule &M,
                                                 ClassTable &Table,
                                                 PrepareOptions Opts = {}) {
  auto T0 = prepareModule(M);
  EXPECT_TRUE(T0);
  if (!T0)
    return nullptr;
  runModule(*T0, Table);
  return reprepareModule(*T0, Opts);
}

const MethodSymbol *findMethod(const ClassTable &Table, const char *Class,
                               const char *Name) {
  for (const auto &C : Table.getClasses())
    if (C->Name == Class)
      for (const auto &M : C->Methods)
        if (M->Name == Name)
          return M.get();
  return nullptr;
}

const ClassSymbol *findClass(const ClassTable &Table, const char *Name) {
  for (const auto &C : Table.getClasses())
    if (C->Name == Name)
      return C.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Corpus differential: forced inlining agrees with the oracle everywhere.
//===----------------------------------------------------------------------===//

class InlineCorpusTest : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(InlineCorpusTest, ForcedInliningMatchesTreeWalk) {
  const CorpusProgram &P = GetParam();
  auto C = compileMJ(std::string(P.Name) + ".mj", P.Source);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);

  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table); // Gather the profile the splices need.

  auto T1 = reprepareModule(*T0, forcedInline());
  ASSERT_TRUE(T1);
  Outcome O = runModule(*T1, *C->Table);
  EXPECT_EQ(O.Err, Ref.Err)
      << P.Name << ": trapped " << runtimeErrorName(O.Err) << ", oracle "
      << runtimeErrorName(Ref.Err);
  EXPECT_EQ(O.Output, Ref.Output) << P.Name << ": output diverged";

  // And the kill switch really kills: an inline-free tier 1 still agrees.
  PrepareOptions Off;
  Off.NoInlining = true;
  auto T1Off = reprepareModule(*T0, Off);
  ASSERT_TRUE(T1Off);
  EXPECT_EQ(T1Off->Tiering.InlinedSites, 0u);
  EXPECT_EQ(T1Off->countOp(XOp::EnterInline), 0u);
  Outcome OOff = runModule(*T1Off, *C->Table);
  EXPECT_EQ(OOff.Err, Ref.Err) << P.Name;
  EXPECT_EQ(OOff.Output, Ref.Output) << P.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, InlineCorpusTest, ::testing::ValuesIn(getCorpus()),
    [](const ::testing::TestParamInfo<CorpusProgram> &I) {
      return std::string(I.param.Name);
    });

//===----------------------------------------------------------------------===//
// Structure: the splice shape, and both off switches.
//===----------------------------------------------------------------------===//

const char *kLeafSrc =
    "class Main { "
    "static int add(int a, int b) { return a + b; } "
    "static void main() { int s = 0; int i = 0; "
    "while (i < 5) { s = add(s, i); i = i + 1; } IO.printInt(s); } }";

TEST(InlineStructure, StaticLeafCallIsFlattened) {
  auto C = compileMJ("leaf.mj", kLeafSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  ASSERT_EQ(T0->countOp(XOp::CallUnit), 1u);
  runModule(*T0, *C->Table);

  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);
  // The direct call is gone; in its place the callee body bracketed by
  // one EnterInline and (value-returning callee) an InlineRet exit — no
  // separate LeaveInline continuation remains.
  EXPECT_EQ(T1->countOp(XOp::CallUnit), 0u);
  EXPECT_EQ(T1->countOp(XOp::EnterInline), 1u);
  EXPECT_GE(T1->countOp(XOp::InlineRet), 1u);
  EXPECT_EQ(T1->countOp(XOp::LeaveInline), 0u);
  EXPECT_EQ(T1->countOp(XOp::GuardInline), 0u); // Static: no receiver.
  EXPECT_EQ(T1->Tiering.InlinedSites, 1u);
  // The un-inlined callee unit stays live (callable directly; no deopt
  // metadata needed), and the caller frame grew by the callee's slots.
  const MethodSymbol *Add = findMethod(*C->Table, "Main", "add");
  ASSERT_TRUE(Add);
  bool SawCallee = false;
  for (const auto &U : T1->Units)
    if (U->Symbol == Add) {
      SawCallee = true;
      EXPECT_FALSE(U->Code.empty());
    }
  EXPECT_TRUE(SawCallee);
  EXPECT_EQ(runModule(*T1, *C->Table).Output, "10");

  // renderTierSummary carries the new tallies on the wire-facing string.
  std::string Summary = renderTierSummary(*T1);
  EXPECT_NE(Summary.find("inlined=1"), std::string::npos) << Summary;
  EXPECT_NE(Summary.find("guardmiss=0"), std::string::npos) << Summary;
}

TEST(InlineStructure, NoInliningOptionRestoresTheCall) {
  auto C = compileMJ("leafoff.mj", kLeafSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table);
  PrepareOptions Off;
  Off.NoInlining = true;
  auto T1 = reprepareModule(*T0, Off);
  ASSERT_TRUE(T1);
  EXPECT_EQ(T1->countOp(XOp::CallUnit), 1u);
  EXPECT_EQ(T1->countOp(XOp::EnterInline), 0u);
  EXPECT_EQ(T1->Tiering.InlinedSites, 0u);
  EXPECT_EQ(runModule(*T1, *C->Table).Output, "10");
}

TEST(InlineStructure, EnvVarDisablesInlining) {
  auto C = compileMJ("leafenv.mj", kLeafSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table);
  setenv("SAFETSA_EXEC_NOINLINE", "1", 1);
  auto T1 = reprepareModule(*T0);
  unsetenv("SAFETSA_EXEC_NOINLINE");
  ASSERT_TRUE(T1);
  EXPECT_EQ(T1->countOp(XOp::EnterInline), 0u);
  EXPECT_EQ(T1->Tiering.InlinedSites, 0u);
  EXPECT_EQ(runModule(*T1, *C->Table).Output, "10");
}

TEST(InlineStructure, BudgetZeroInlinesNothing) {
  auto C = compileMJ("leafb0.mj", kLeafSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table);
  PrepareOptions B0;
  B0.InlineBudget = 0;
  auto T1 = reprepareModule(*T0, B0);
  ASSERT_TRUE(T1);
  EXPECT_EQ(T1->countOp(XOp::EnterInline), 0u);
  EXPECT_EQ(runModule(*T1, *C->Table).Output, "10");
}

//===----------------------------------------------------------------------===//
// Guarded splices: the mono receiver check and its fallback.
//===----------------------------------------------------------------------===//

const char *kMonoSrc =
    "class A { int f() { return 1; } } "
    "class B extends A { int f() { return 2; } } "
    "class Main { "
    "static int go(A a) { return a.f(); } "
    "static void main() { A x = new A(); int s = 0; int i = 0; "
    "while (i < 10) { s = s + go(x); i = i + 1; } IO.printInt(s); } }";

TEST(InlineGuard, MonoSpliceGuardsAndKeepsFallback) {
  auto C = compileMJ("monoinl.mj", kMonoSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  auto T0 = prepareModule(*C->TSA);
  ASSERT_TRUE(T0);
  runModule(*T0, *C->Table); // Only A receivers recorded.
  auto T1 = reprepareModule(*T0);
  ASSERT_TRUE(T1);
  // The spliced site: guard in the stream, the original DispatchMono
  // kept out of line as the miss path.
  EXPECT_EQ(T1->countOp(XOp::GuardInline), 1u);
  EXPECT_EQ(T1->countOp(XOp::DispatchMono), 1u);
  EXPECT_EQ(T1->Tiering.InlinedSites, 1u);

  // All-A workload: every guard hits, nothing tallies (splice hits are
  // free — only misses are counted, at the fallback).
  EXPECT_EQ(runModule(*T1, *C->Table).Output, "10");
  EXPECT_EQ(T1->InlineGuardMisses.load(), 0u);
  EXPECT_EQ(T1->ICHits.load(), 0u);
  EXPECT_EQ(T1->ICMisses.load(), 0u);

  // A B receiver misses the guard, reaches B.f through the fallback
  // DispatchMono (whose own mono cache also misses), and is counted on
  // both ledgers.
  const MethodSymbol *Go = findMethod(*C->Table, "Main", "go");
  const ClassSymbol *B = findClass(*C->Table, "B");
  ASSERT_TRUE(Go && B);
  Runtime RT(*C->Table);
  TSAExec X(*T1, RT);
  ExecResult R = X.call(Go, {Value::makeRef(RT.allocObject(B))});
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Ret.I, 2);
  EXPECT_EQ(T1->InlineGuardMisses.load(), 1u);
  EXPECT_EQ(T1->ICMisses.load(), 1u);
}

//===----------------------------------------------------------------------===//
// Unwind: traps inside inlined bodies, caught and uncaught.
//===----------------------------------------------------------------------===//

void expectInlineParity(const char *Name, const char *Src) {
  auto C = compileMJ(std::string(Name) + ".mj", Src);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);
  auto T1 = tier1AfterOneRun(*C->TSA, *C->Table, forcedInline());
  ASSERT_TRUE(T1);
  Outcome O = runModule(*T1, *C->Table);
  EXPECT_EQ(O.Err, Ref.Err)
      << Name << ": trapped " << runtimeErrorName(O.Err) << ", oracle "
      << runtimeErrorName(Ref.Err);
  EXPECT_EQ(O.Output, Ref.Output) << Name;
}

TEST(InlineTraps, UncaughtTrapInsideInlinedBody) {
  // div is a leaf, gets spliced; the third iteration divides by zero.
  // The partial output before the trap must survive.
  expectInlineParity(
      "inldiv",
      "class Main { static int div(int a, int b) { return a / b; } "
      "static void main() { int i = 2; while (i > 0 - 1) { "
      "IO.printInt(div(6, i)); i = i - 1; } } }");
}

TEST(InlineTraps, NullDerefInsideInlinedCallee) {
  expectInlineParity(
      "inlnull",
      "class P { int v; } "
      "class Main { static int get(P p) { return p.v; } "
      "static void main() { P p = new P(); p.v = 9; "
      "IO.printInt(get(p)); P q = null; IO.printInt(get(q)); } }");
}

TEST(InlineTraps, CaughtTrapInsideInlinedBodyReachesSiteHandler) {
  // The call site sits in a try block: the splice's trampoline must
  // route a caught trap from inside the inlined body to the caller's
  // handler with the inline activations unwound.
  expectInlineParity(
      "inlcatch",
      "class Main { static int pick(int[] a, int i) { return a[i]; } "
      "static void main() { int[] a = new int[3]; a[2] = 7; int i = 0; "
      "while (i < 5) { try { IO.printInt(pick(a, i + 2)); } "
      "catch { IO.printStr(\"oob \"); } i = i + 1; } } }");
}

TEST(InlineTraps, CatchInsideInlinedCalleeStaysLocal) {
  // The callee has its own try/catch; its handlers are re-based into
  // the caller's stream and must still fire locally.
  expectInlineParity(
      "inllocal",
      "class Main { static int safe(int a, int b) { "
      "try { return a / b; } catch { return 0 - 1; } } "
      "static void main() { IO.printInt(safe(8, 2)); "
      "IO.printInt(safe(8, 0)); } }");
}

TEST(InlineTraps, DepthLimitCountsInlinedFrames) {
  // leaf() is spliced into deep(), but EnterInline still charges the
  // activation ledger: recursing at the limit must overflow at the same
  // observable point the tree-walker overflows.
  expectInlineParity(
      "inldepth",
      "class Main { static int leaf(int x) { return x + 1; } "
      "static int deep(int n) { int k = leaf(n); "
      "if (n <= 0) { return k; } return deep(n - 1); } "
      "static void main() { IO.printInt(deep(1000)); } }");
}

//===----------------------------------------------------------------------===//
// GC stress: collect at every allocation across inlined frames.
//===----------------------------------------------------------------------===//

TEST(InlineGC, StressCollectAcrossInlinedFrames) {
  // The inlined callee allocates, forcing collections while the caller's
  // extended frame (merged RefSlots) holds the only references. Wrong
  // root maps reclaim live cells and corrupt the sums.
  const char *Src =
      "class Box { int v; } "
      "class Main { "
      "static Box boxed(int v) { Box b = new Box(); b.v = v; return b; } "
      "static int sum(Box a, Box b) { return a.v + b.v; } "
      "static void main() { int s = 0; int i = 0; "
      "while (i < 50) { Box x = boxed(i); Box y = boxed(i + i); "
      "s = s + sum(x, y); i = i + 1; } IO.printInt(s); } }";
  auto C = compileMJ("inlgc.mj", Src);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);
  auto T1 = tier1AfterOneRun(*C->TSA, *C->Table, forcedInline());
  ASSERT_TRUE(T1);
  EXPECT_GE(T1->Tiering.InlinedSites, 1u);
  GcOptions Stress;
  Stress.StressEveryNAllocs = 1;
  Outcome O = runModule(*T1, *C->Table, Stress);
  EXPECT_EQ(O.Err, Ref.Err);
  EXPECT_EQ(O.Output, Ref.Output);
}

TEST(InlineGC, CorpusUnderStressWithForcedInlining) {
  // The heaviest allocator in the corpus, collect-at-every-allocation,
  // inlining forced: end-to-end pressure on the merged root maps.
  const CorpusProgram *P = findCorpusProgram("BigInteger");
  ASSERT_TRUE(P);
  auto C = compileMJ("inlgcbig.mj", P->Source);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  Outcome Ref = runTreeWalk(*C->TSA, *C->Table);
  auto T1 = tier1AfterOneRun(*C->TSA, *C->Table, forcedInline());
  ASSERT_TRUE(T1);
  GcOptions Stress;
  Stress.StressEveryNAllocs = 1;
  Outcome O = runModule(*T1, *C->Table, Stress);
  EXPECT_EQ(O.Err, Ref.Err);
  EXPECT_EQ(O.Output, Ref.Output);
}

//===----------------------------------------------------------------------===//
// Profile-counter saturation (the satellite hardening this PR rides on).
//===----------------------------------------------------------------------===//

TEST(ProfileSaturation, InvocationCounterStopsAtCeiling) {
  ProfileData P(1, 0);
  P.recordInvocation(0, ProfileData::kSaturate - 5);
  EXPECT_EQ(P.invocations(0), ProfileData::kSaturate - 5);
  // Crossing the boundary lands once...
  P.recordInvocation(0, 10);
  EXPECT_EQ(P.invocations(0), ProfileData::kSaturate + 5);
  // ...then the counter is pinned: no further movement, never a wrap.
  P.recordInvocation(0, ~uint64_t(0) / 2);
  P.recordInvocation(0);
  EXPECT_EQ(P.invocations(0), ProfileData::kSaturate + 5);
  // A saturated method still reads as hot.
  EXPECT_TRUE(P.anyHot(1));
  EXPECT_TRUE(P.anyHot(ProfileData::kSaturate));
}

TEST(ProfileSaturation, DispatchWaysAndOverflowStopAtCeiling) {
  auto C = compileMJ("sat.mj", kMonoSrc);
  ASSERT_TRUE(C->ok()) << C->renderDiagnostics();
  const ClassSymbol *A = findClass(*C->Table, "A");
  const ClassSymbol *B = findClass(*C->Table, "B");
  ASSERT_TRUE(A && B);

  ProfileData P(0, 1);
  P.recordDispatch(0, A, ProfileData::kSaturate - 1);
  P.recordDispatch(0, A, 7);
  P.recordDispatch(0, A, 7); // Pinned now.
  ProfileData::SiteSummary S = P.site(0);
  EXPECT_EQ(S.Classes[0], A);
  EXPECT_EQ(S.Counts[0], ProfileData::kSaturate + 6);
  // The second way saturates independently of the first.
  P.recordDispatch(0, B, ProfileData::kSaturate);
  P.recordDispatch(0, B);
  S = P.site(0);
  EXPECT_EQ(S.Classes[1], B);
  EXPECT_EQ(S.Counts[1], ProfileData::kSaturate);
  // total() of two saturated ways must not wrap either.
  EXPECT_EQ(S.total(), 2 * ProfileData::kSaturate + 6);
  EXPECT_FALSE(S.megamorphic());
}

} // namespace
