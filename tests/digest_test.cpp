//===- tests/digest_test.cpp - Content-digest unit tests ------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// support/Digest: known-answer tests against independently computed
/// FNV-1a-128 values (the function must be stable across runs, builds,
/// and machines — store file names and cache keys depend on it), hex
/// round-tripping, and a collision smoke test over every wire encoding
/// the corpus can produce.
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "opt/Optimizer.h"
#include "support/Digest.h"

#include <gtest/gtest.h>

#include <map>

using namespace safetsa;

namespace {

Digest digestOfString(const std::string &S) {
  return digestOf(
      ByteSpan(reinterpret_cast<const uint8_t *>(S.data()), S.size()));
}

// Reference values computed with an independent FNV-1a-128
// implementation (big-integer arithmetic, draft-eastlake-fnv params).
TEST(Digest, KnownAnswers) {
  EXPECT_EQ(digestOfString("").hex(), "6c62272e07bb014262b821756295c58d");
  EXPECT_EQ(digestOfString("a").hex(), "d228cb696f1a8caf78912b704e4a8964");
  EXPECT_EQ(digestOfString("abc").hex(),
            "a68d622cec8b5822836dbc7977af7f3b");
  EXPECT_EQ(digestOfString("hello world").hex(),
            "6c155799fdc8eec4b91523808e7726b7");
  EXPECT_EQ(digestOfString("SafeTSA").hex(),
            "d8879023e14ff78d6dc956385ce3deec");
  std::vector<uint8_t> AllBytes(256);
  for (unsigned I = 0; I != 256; ++I)
    AllBytes[I] = static_cast<uint8_t>(I);
  EXPECT_EQ(digestOf(ByteSpan(AllBytes)).hex(),
            "8097249afae7c21686b07bd6fa33708d");
}

TEST(Digest, StableAcrossCalls) {
  std::vector<uint8_t> Data;
  for (unsigned I = 0; I != 10'000; ++I)
    Data.push_back(static_cast<uint8_t>(I * 7 + (I >> 3)));
  Digest First = digestOf(ByteSpan(Data));
  for (unsigned I = 0; I != 5; ++I)
    EXPECT_EQ(digestOf(ByteSpan(Data)), First);
}

TEST(Digest, HexRoundTrip) {
  Digest D = digestOfString("round trip me");
  auto Parsed = Digest::fromHex(D.hex());
  ASSERT_TRUE(Parsed.has_value());
  EXPECT_EQ(*Parsed, D);
  // Either case parses.
  std::string Upper = D.hex();
  for (char &C : Upper)
    C = static_cast<char>(toupper(C));
  ASSERT_TRUE(Digest::fromHex(Upper).has_value());
  EXPECT_EQ(*Digest::fromHex(Upper), D);
}

TEST(Digest, FromHexRejectsMalformed) {
  EXPECT_FALSE(Digest::fromHex("").has_value());
  EXPECT_FALSE(Digest::fromHex("abcd").has_value());
  EXPECT_FALSE(
      Digest::fromHex("6c62272e07bb014262b821756295c58").has_value());
  EXPECT_FALSE(
      Digest::fromHex("6c62272e07bb014262b821756295c58dd").has_value());
  EXPECT_FALSE(
      Digest::fromHex("6c62272e07bb014262b821756295c58g").has_value());
}

TEST(Digest, SingleBitSensitivity) {
  std::string Base = "the quick brown fox jumps over the lazy dog";
  Digest D = digestOfString(Base);
  for (size_t I = 0; I != Base.size(); ++I) {
    std::string Flipped = Base;
    Flipped[I] = static_cast<char>(Flipped[I] ^ 1);
    EXPECT_NE(digestOfString(Flipped), D) << "byte " << I;
  }
}

/// Collision smoke over everything the corpus can put on the wire: both
/// codec modes, unoptimized and optimized. Distinct byte streams must
/// get distinct digests (equal streams, equal digests, by definition).
TEST(Digest, CorpusCollisionSmoke) {
  std::map<std::string, std::vector<uint8_t>> Seen; // hex -> bytes
  unsigned Streams = 0;
  for (const CorpusProgram &P : getCorpus()) {
    for (bool Optimize : {false, true}) {
      auto C = compileMJ(P.Name, P.Source);
      ASSERT_TRUE(C->ok()) << P.Name;
      if (Optimize)
        optimizeModule(*C->TSA);
      for (CodecMode Mode : {CodecMode::Prefix, CodecMode::Naive}) {
        std::vector<uint8_t> Wire = encodeModule(*C->TSA, Mode);
        ++Streams;
        std::string Hex = digestOf(ByteSpan(Wire)).hex();
        auto [It, Inserted] = Seen.try_emplace(Hex, Wire);
        if (!Inserted) {
          EXPECT_EQ(It->second, Wire)
              << "digest collision between distinct streams: " << Hex;
        }
      }
    }
  }
  // The corpus really produced a spread of distinct streams.
  EXPECT_GE(Seen.size(), Streams / 2);
}

} // namespace
