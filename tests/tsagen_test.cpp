//===- tests/tsagen_test.cpp - SafeTSA generation invariants --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural properties of generated SafeTSA: the paper's well-formedness
/// rules hold by construction for every corpus program (property checks),
/// and small programs produce the expected shapes (unit checks).
///
//===----------------------------------------------------------------------===//

#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "ssagen/TSAGen.h"
#include "tsa/Signature.h"
#include "tsa/Verifier.h"

#include <gtest/gtest.h>

#include <unordered_map>

using namespace safetsa;

namespace {

std::unique_ptr<CompiledProgram> compile(const std::string &Src) {
  auto P = compileMJ("gen.mj", Src);
  EXPECT_TRUE(P->ok()) << P->renderDiagnostics();
  return P;
}

const TSAMethod *methodNamed(const TSAModule &M, const std::string &Name) {
  for (const auto &F : M.Methods)
    if (F->Symbol->Name == Name)
      return F.get();
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Property checks over the whole corpus
//===----------------------------------------------------------------------===//

class GenProperty : public ::testing::TestWithParam<CorpusProgram> {};

TEST_P(GenProperty, EveryOperandDominatesItsUse) {
  auto P = compile(GetParam().Source);
  for (const auto &M : P->TSA->Methods) {
    std::unordered_map<const Instruction *, unsigned> Ordinal;
    for (const auto &BB : M->Blocks)
      for (unsigned I = 0; I != BB->Insts.size(); ++I)
        Ordinal[BB->Insts[I]] = I;
    for (const auto &BB : M->Blocks) {
      for (const auto &I : BB->Insts) {
        for (size_t K = 0; K != I->Operands.size(); ++K) {
          const Instruction *Op = I->Operands[K];
          ASSERT_NE(Op->Parent, nullptr);
          if (I->isPhi()) {
            ASSERT_LT(K, BB->Preds.size());
            EXPECT_TRUE(BasicBlock::dominates(Op->Parent, BB->Preds[K]));
          } else if (Op->Parent == BB) {
            EXPECT_LT(Ordinal[Op], Ordinal[I])
                << "same-block use before def";
          } else {
            EXPECT_TRUE(BasicBlock::dominates(Op->Parent, BB))
                << "operand block does not dominate use";
          }
        }
      }
    }
  }
}

TEST_P(GenProperty, PreloadsOnlyInEntryAndPhisFirst) {
  auto P = compile(GetParam().Source);
  for (const auto &M : P->TSA->Methods) {
    for (const auto &BB : M->Blocks) {
      bool SeenNonPhi = false;
      for (const auto &I : BB->Insts) {
        if (I->isPreload()) {
          EXPECT_EQ(BB, M->getEntry());
        }
        if (I->isPhi()) {
          EXPECT_FALSE(SeenNonPhi) << "phi after non-phi";
        } else {
          SeenNonPhi = true;
        }
      }
    }
  }
}

TEST_P(GenProperty, PhiArityMatchesPredecessors) {
  auto P = compile(GetParam().Source);
  for (const auto &M : P->TSA->Methods)
    for (const auto &BB : M->Blocks)
      for (const auto &I : BB->Insts)
        if (I->isPhi()) {
          EXPECT_EQ(I->Operands.size(), BB->Preds.size());
        }
}

TEST_P(GenProperty, BlocksAreInDominatorPreOrder) {
  auto P = compile(GetParam().Source);
  for (const auto &M : P->TSA->Methods) {
    for (const auto &BB : M->Blocks) {
      if (BB->IDom) {
        EXPECT_LT(BB->IDom->Id, BB->Id)
            << "immediate dominator must precede the block";
      }
      EXPECT_EQ(BB->DomDepth, BB->IDom ? BB->IDom->DomDepth + 1 : 0u);
    }
    // Entry is first and has no predecessors.
    EXPECT_TRUE(M->getEntry()->Preds.empty());
    EXPECT_EQ(M->getEntry()->Id, 0u);
  }
}

TEST_P(GenProperty, MemoryOpsConsumeOnlySafePlanes) {
  auto P = compile(GetParam().Source);
  PlaneContext Ctx{P->Types, *P->Table};
  for (const auto &M : P->TSA->Methods) {
    M->forEachInstruction([&](const Instruction &I) {
      switch (I.Op) {
      case Opcode::GetField:
      case Opcode::SetField:
      case Opcode::GetElt:
      case Opcode::SetElt:
      case Opcode::ArrayLength: {
        std::optional<PlaneKey> Got = resultPlane(*I.Operands[0], Ctx);
        ASSERT_TRUE(Got.has_value());
        EXPECT_EQ(Got->K, PlaneKey::Kind::SafeRef)
            << "memory operation with an unchecked designator";
        break;
      }
      case Opcode::Dispatch: {
        std::optional<PlaneKey> Got = resultPlane(*I.Operands[0], Ctx);
        ASSERT_TRUE(Got.has_value());
        EXPECT_EQ(Got->K, PlaneKey::Kind::SafeRef);
        break;
      }
      default:
        break;
      }
    });
  }
}

TEST_P(GenProperty, IndexCertificatesAnchorToTheirArray) {
  // GetElt/SetElt index operands must be certificates for exactly the
  // array value being accessed (Appendix A).
  auto P = compile(GetParam().Source);
  for (const auto &M : P->TSA->Methods) {
    M->forEachInstruction([&](const Instruction &I) {
      if (I.Op != Opcode::GetElt && I.Op != Opcode::SetElt)
        return;
      const Instruction *Idx = I.Operands[1];
      ASSERT_EQ(Idx->Op, Opcode::IndexCheck);
      EXPECT_EQ(Idx->Operands[0], I.Operands[0])
          << "index certificate anchored to a different array";
    });
  }
}

TEST_P(GenProperty, ConstantPoolIsDeduplicated) {
  auto P = compile(GetParam().Source);
  for (const auto &M : P->TSA->Methods) {
    const BasicBlock *Entry = M->getEntry();
    for (size_t I = 0; I != Entry->Insts.size(); ++I) {
      if (Entry->Insts[I]->Op != Opcode::Const)
        continue;
      for (size_t J = I + 1; J != Entry->Insts.size(); ++J) {
        if (Entry->Insts[J]->Op != Opcode::Const)
          continue;
        EXPECT_FALSE(Entry->Insts[I]->OpType == Entry->Insts[J]->OpType &&
                     Entry->Insts[I]->C == Entry->Insts[J]->C)
            << "duplicate constant-pool entry";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, GenProperty, ::testing::ValuesIn(getCorpus()),
    [](const ::testing::TestParamInfo<CorpusProgram> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Shape checks on small programs
//===----------------------------------------------------------------------===//

TEST(TSAGen, StraightLineHasTwoBlocks) {
  auto P = compile("class A { static int f(int x) { return x + 1; } "
                   "static void main() { IO.printInt(f(1)); } }");
  const TSAMethod *F = methodNamed(*P->TSA, "f");
  ASSERT_NE(F, nullptr);
  // Entry (preloads) + one code block.
  EXPECT_EQ(F->Blocks.size(), 2u);
  EXPECT_EQ(F->countOpcode(Opcode::Phi), 0u);
}

TEST(TSAGen, IfElseProducesJoinPhi) {
  auto P = compile(
      "class A { static int f(boolean b) { int x = 0; "
      "if (b) x = 1; else x = 2; return x; } "
      "static void main() { IO.printInt(f(true)); } }");
  const TSAMethod *F = methodNamed(*P->TSA, "f");
  // Blocks: entry, code, then, else, join.
  EXPECT_EQ(F->Blocks.size(), 5u);
  // Eager single-pass construction: one phi merging x, plus a trivial one
  // for the unmodified b (removed later by DCE, as in the paper).
  EXPECT_EQ(F->countOpcode(Opcode::Phi), 2u);
}

TEST(TSAGen, WhileLoopHeaderHoldsPhis) {
  auto P = compile(
      "class A { static int f(int n) { int s = 0; int i = 0; "
      "while (i < n) { s = s + i; i = i + 1; } return s; } "
      "static void main() { IO.printInt(f(3)); } }");
  const TSAMethod *F = methodNamed(*P->TSA, "f");
  ASSERT_NE(F, nullptr);
  // Eager construction: phis for n, s, i in the loop header.
  unsigned Phis = F->countOpcode(Opcode::Phi);
  EXPECT_GE(Phis, 3u);
  // The loop CST node's header sequence starts with the phi block.
  const CSTNode *Loop = nullptr;
  for (const auto &N : F->Root)
    if (N->K == CSTNode::Kind::Loop)
      Loop = N;
  ASSERT_NE(Loop, nullptr);
  ASSERT_FALSE(Loop->Header.empty());
  const BasicBlock *Header = Loop->Header.front()->BB;
  unsigned HeaderPhis = 0;
  for (const auto &I : Header->Insts)
    if (I->isPhi())
      ++HeaderPhis;
  EXPECT_EQ(HeaderPhis, Phis);
  // Header has a back edge: at least two predecessors.
  EXPECT_GE(Header->Preds.size(), 2u);
}

TEST(TSAGen, FieldReadEmitsNullCheckThenGetField) {
  auto P = compile("class C { int v; static int f(C c) { return c.v; } "
                   "static void main() { IO.printInt(f(new C())); } }");
  const TSAMethod *F = methodNamed(*P->TSA, "f");
  EXPECT_EQ(F->countOpcode(Opcode::NullCheck), 1u);
  EXPECT_EQ(F->countOpcode(Opcode::GetField), 1u);
}

TEST(TSAGen, ArrayReadEmitsBothChecks) {
  auto P = compile(
      "class A { static int f(int[] a) { return a[2]; } "
      "static void main() { IO.printInt(f(new int[3])); } }");
  const TSAMethod *F = methodNamed(*P->TSA, "f");
  EXPECT_EQ(F->countOpcode(Opcode::NullCheck), 1u);
  EXPECT_EQ(F->countOpcode(Opcode::IndexCheck), 1u);
  EXPECT_EQ(F->countOpcode(Opcode::GetElt), 1u);
}

TEST(TSAGen, DivisionIsXPrimitive) {
  auto P = compile(
      "class A { static int f(int a, int b) { return a / b + a * b; } "
      "static void main() { IO.printInt(f(6, 3)); } }");
  const TSAMethod *F = methodNamed(*P->TSA, "f");
  EXPECT_EQ(F->countOpcode(Opcode::XPrimitive), 1u);
  // mul and add are plain primitives.
  EXPECT_EQ(F->countOpcode(Opcode::Primitive), 2u);
}

TEST(TSAGen, UnreachableCodeIsDropped) {
  auto P = compile("class A { static int f() { return 1; } "
                   "static void main() { IO.printInt(f()); } }");
  // No crash and a verifiable module is the main assertion here.
  TSAVerifier V(*P->TSA);
  EXPECT_TRUE(V.verify());
}

TEST(TSAGen, PrunedModeCreatesFewerPhis) {
  const char *Src =
      "class A { static int f(int n) { int a = 1; int b = 2; int s = 0; "
      "for (int i = 0; i < n; i++) { s = s + a + b; } return s; } "
      "static void main() { IO.printInt(f(2)); } }";
  auto Eager = compileMJ("gen.mj", Src);
  ASSERT_TRUE(Eager->ok());

  auto Base = compileMJ("gen.mj", Src, /*EmitTSA=*/false);
  TSAGenOptions G;
  G.EagerPhis = false;
  TSAGenerator Gen(Base->Types, *Base->Table, G);
  auto Pruned = Gen.generate(Base->AST);

  EXPECT_GT(Eager->TSA->countOpcode(Opcode::Phi),
            Pruned->countOpcode(Opcode::Phi));
  TSAVerifier V1(*Eager->TSA);
  EXPECT_TRUE(V1.verify());
  TSAVerifier V2(*Pruned);
  EXPECT_TRUE(V2.verify());
}

TEST(TSAGen, DispatchReceiverIsErasedToOwnerPlane) {
  auto P = compile(
      "class A { int f() { return 1; } } class B extends A {} "
      "class Main { static void main() { B b = new B(); "
      "IO.printInt(b.f()); } }");
  const TSAMethod *M = methodNamed(*P->TSA, "main");
  bool FoundDispatch = false;
  PlaneContext Ctx{P->Types, *P->Table};
  M->forEachInstruction([&](const Instruction &I) {
    if (I.Op != Opcode::Dispatch)
      return;
    FoundDispatch = true;
    // Receiver plane is safe-A (the method owner), reached via a free
    // safety-preserving downcast from safe-B.
    std::optional<PlaneKey> Plane = resultPlane(*I.Operands[0], Ctx);
    ASSERT_TRUE(Plane.has_value());
    EXPECT_EQ(Plane->K, PlaneKey::Kind::SafeRef);
    EXPECT_EQ(Plane->Ty->getClassSymbol()->Name, "A");
  });
  EXPECT_TRUE(FoundDispatch);
}

} // namespace
