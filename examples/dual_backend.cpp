//===- examples/dual_backend.cpp - SafeTSA vs stack bytecode --*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles one program to both mobile-code formats, prints the static
/// comparison the paper's evaluation is built on (instruction counts,
/// encoded sizes, dynamic-check counts), and then executes both to show
/// they agree — the per-program version of Figures 5 and 6.
///
/// Usage:  ./build/examples/dual_backend [corpus-program-name]
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCFile.h"
#include "bytecode/BCInterp.h"
#include "bytecode/BCVerifier.h"
#include "codec/Codec.h"
#include "corpus/Corpus.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <cstdio>
#include <cstring>

using namespace safetsa;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "BitSieve";
  const CorpusProgram *Prog = findCorpusProgram(Name);
  if (!Prog) {
    std::fprintf(stderr, "unknown corpus program '%s'; available:\n", Name);
    for (const CorpusProgram &P : getCorpus())
      std::fprintf(stderr, "  %-20s (%s)\n", P.Name, P.Role);
    return 1;
  }

  auto C = compileMJ(Prog->Name, Prog->Source);
  if (!C->ok()) {
    std::fprintf(stderr, "%s", C->renderDiagnostics().c_str());
    return 1;
  }

  // Bytecode side.
  BCCompiler BCC(C->Types, *C->Table);
  auto BC = BCC.compile(C->AST);
  BCVerifier BV(*BC);
  bool BCOk = BV.verify();
  std::vector<uint8_t> BCFile = writeBCModule(*BC);

  // SafeTSA side, before and after optimization.
  unsigned TSAInsts = C->TSA->countInstructions();
  unsigned Null0 = C->TSA->countOpcode(Opcode::NullCheck);
  unsigned Idx0 = C->TSA->countOpcode(Opcode::IndexCheck);
  std::vector<uint8_t> TSAFile = encodeModule(*C->TSA);
  optimizeModule(*C->TSA);
  unsigned TSAOptInsts = C->TSA->countInstructions();
  unsigned Null1 = C->TSA->countOpcode(Opcode::NullCheck);
  unsigned Idx1 = C->TSA->countOpcode(Opcode::IndexCheck);
  std::vector<uint8_t> TSAOptFile = encodeModule(*C->TSA);
  TSAVerifier TV(*C->TSA);
  bool TSAOk = TV.verify();

  std::printf("program: %s  (stands in for %s)\n\n", Prog->Name,
              Prog->Role);
  std::printf("%-28s %10s %10s %12s\n", "", "bytecode", "SafeTSA",
              "SafeTSA opt");
  std::printf("%-28s %10u %10u %12u\n", "instructions",
              BC->countInstructions(), TSAInsts, TSAOptInsts);
  std::printf("%-28s %10zu %10zu %12zu\n", "encoded bytes", BCFile.size(),
              TSAFile.size(), TSAOptFile.size());
  std::printf("%-28s %10s %10u %12u\n", "explicit null checks",
              "(implicit)", Null0, Null1);
  std::printf("%-28s %10s %10u %12u\n", "explicit index checks",
              "(implicit)", Idx0, Idx1);
  std::printf("%-28s %10s %10s %12s\n", "verifier",
              BCOk ? "dataflow ok" : "FAIL", "ok",
              TSAOk ? "ok" : "FAIL");

  // Execute both.
  std::string OutBC, OutTSA;
  {
    Runtime RT(*C->Table);
    BCInterpreter I(*BC, RT, C->Types);
    if (!I.runMain().ok())
      return 1;
    OutBC = RT.getOutput();
  }
  {
    Runtime RT(*C->Table);
    TSAInterpreter I(*C->TSA, RT);
    if (!I.runMain().ok())
      return 1;
    OutTSA = RT.getOutput();
  }
  std::printf("\noutputs agree: %s\n",
              OutBC == OutTSA ? "yes" : "NO (bug!)");
  std::printf("--- program output ---\n%s", OutTSA.c_str());
  return 0;
}
