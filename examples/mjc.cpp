//===- examples/mjc.cpp - Command-line MJ/SafeTSA toolchain ---*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A command-line front door to the whole toolchain, in the spirit of the
/// paper's compiler + dynamic class loader pair:
///
///   mjc compile  in.mj [-o out.stsa] [-O] [--bytecode out.mjbc]
///       Compile MJ source to a SafeTSA mobile-code unit (optionally
///       optimized) and, if asked, to a baseline class file.
///   mjc run      in.mj|in.stsa [-O]
///       Compile (or decode), verify, and execute; prints program output.
///   mjc verify   in.stsa
///       Consumer-side check of a mobile-code unit.
///   mjc dump     in.mj|in.stsa [-O]
///       Print the SafeTSA form in the paper's (l-r) notation.
///   mjc stats    in.mj
///       Per-method instruction/check counts before and after
///       optimization (a one-program Figure 5/6).
///
//===----------------------------------------------------------------------===//

#include "bytecode/BCCompiler.h"
#include "bytecode/BCFile.h"
#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Printer.h"
#include "tsa/Verifier.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace safetsa;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: mjc <compile|run|verify|dump|stats> <input> [options]\n"
      "  compile in.mj [-o out.stsa] [-O] [--bytecode out.mjbc]\n"
      "  run     in.mj|in.stsa [-O]\n"
      "  verify  in.stsa\n"
      "  dump    in.mj|in.stsa [-O]\n"
      "  stats   in.mj\n");
  return 2;
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

bool writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream OutStream(Path, std::ios::binary);
  if (!OutStream)
    return false;
  OutStream.write(reinterpret_cast<const char *>(Bytes.data()),
                  static_cast<std::streamsize>(Bytes.size()));
  return OutStream.good();
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

/// Either a locally compiled program or a decoded mobile-code unit; both
/// expose a table + module for the downstream verbs.
struct Loaded {
  std::unique_ptr<CompiledProgram> Local;
  std::unique_ptr<DecodedUnit> Remote;

  TSAModule *module() {
    return Local ? Local->TSA.get() : Remote->Module.get();
  }
  ClassTable *table() {
    return Local ? Local->Table.get() : Remote->Table.get();
  }
};

bool load(const std::string &Path, bool Optimize, Loaded &Out) {
  if (endsWith(Path, ".stsa")) {
    std::vector<uint8_t> Bytes;
    if (!readFile(Path, Bytes)) {
      std::fprintf(stderr, "mjc: cannot read '%s'\n", Path.c_str());
      return false;
    }
    std::string Err;
    Out.Remote = decodeModule(Bytes, &Err);
    if (!Out.Remote) {
      std::fprintf(stderr, "mjc: decode failed: %s\n", Err.c_str());
      return false;
    }
  } else {
    std::vector<uint8_t> Bytes;
    if (!readFile(Path, Bytes)) {
      std::fprintf(stderr, "mjc: cannot read '%s'\n", Path.c_str());
      return false;
    }
    Out.Local = compileMJ(Path, std::string(Bytes.begin(), Bytes.end()));
    if (!Out.Local->ok()) {
      std::fputs(Out.Local->renderDiagnostics().c_str(), stderr);
      return false;
    }
  }
  if (Optimize)
    optimizeModule(*Out.module());
  TSAVerifier V(*Out.module());
  if (!V.verify()) {
    for (const std::string &E : V.getErrors())
      std::fprintf(stderr, "mjc: verify: %s\n", E.c_str());
    return false;
  }
  return true;
}

int runModule(Loaded &L) {
  Runtime RT(*L.table());
  TSAInterpreter Interp(*L.module(), RT);
  ExecResult R = Interp.runMain();
  std::fputs(RT.getOutput().c_str(), stdout);
  if (!R.ok()) {
    std::fprintf(stderr, "mjc: uncaught %s\n", runtimeErrorName(R.Err));
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 3)
    return usage();
  std::string Verb = argv[1];
  std::string Input = argv[2];

  bool Optimize = false;
  std::string OutPath;
  std::string BytecodePath;
  for (int I = 3; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "-O")
      Optimize = true;
    else if (Arg == "-o" && I + 1 < argc)
      OutPath = argv[++I];
    else if (Arg == "--bytecode" && I + 1 < argc)
      BytecodePath = argv[++I];
    else
      return usage();
  }

  if (Verb == "compile") {
    if (endsWith(Input, ".stsa")) {
      std::fprintf(stderr, "mjc: compile expects MJ source input\n");
      return 2;
    }
    Loaded L;
    if (!load(Input, Optimize, L))
      return 1;
    if (OutPath.empty()) {
      OutPath = Input;
      if (endsWith(OutPath, ".mj"))
        OutPath.resize(OutPath.size() - 3);
      OutPath += ".stsa";
    }
    std::vector<uint8_t> Wire = encodeModule(*L.module());
    if (!writeFile(OutPath, Wire)) {
      std::fprintf(stderr, "mjc: cannot write '%s'\n", OutPath.c_str());
      return 1;
    }
    std::printf("mjc: wrote %s (%zu bytes, %u instructions)\n",
                OutPath.c_str(), Wire.size(),
                L.module()->countInstructions());
    if (!BytecodePath.empty()) {
      BCCompiler BCC(L.Local->Types, *L.Local->Table);
      auto BC = BCC.compile(L.Local->AST);
      std::vector<uint8_t> Bytes = writeBCModule(*BC);
      if (!writeFile(BytecodePath, Bytes)) {
        std::fprintf(stderr, "mjc: cannot write '%s'\n",
                     BytecodePath.c_str());
        return 1;
      }
      std::printf("mjc: wrote %s (%zu bytes, %u instructions)\n",
                  BytecodePath.c_str(), Bytes.size(),
                  BC->countInstructions());
    }
    return 0;
  }

  if (Verb == "run") {
    Loaded L;
    if (!load(Input, Optimize, L))
      return 1;
    return runModule(L);
  }

  if (Verb == "verify") {
    Loaded L;
    if (!load(Input, /*Optimize=*/false, L))
      return 1;
    std::printf("mjc: %s verifies (%zu methods, %u instructions)\n",
                Input.c_str(), L.module()->Methods.size(),
                L.module()->countInstructions());
    return 0;
  }

  if (Verb == "dump") {
    Loaded L;
    if (!load(Input, Optimize, L))
      return 1;
    std::fputs(printModule(*L.module()).c_str(), stdout);
    return 0;
  }

  if (Verb == "stats") {
    Loaded L;
    if (!load(Input, /*Optimize=*/false, L))
      return 1;
    TSAModule *M = L.module();
    std::printf("%-40s %6s %6s %6s %6s\n", "method", "insts", "phis",
                "nullck", "idxck");
    auto Row = [&](const char *Tag) {
      std::printf("== %s: %u instructions, %u phis, %u null checks, %u "
                  "index checks\n",
                  Tag, M->countInstructions(), M->countOpcode(Opcode::Phi),
                  M->countOpcode(Opcode::NullCheck),
                  M->countOpcode(Opcode::IndexCheck));
    };
    for (const auto &F : M->Methods)
      std::printf("%-40s %6u %6u %6u %6u\n",
                  F->Symbol->signature().c_str(), F->countInstructions(),
                  F->countOpcode(Opcode::Phi),
                  F->countOpcode(Opcode::NullCheck),
                  F->countOpcode(Opcode::IndexCheck));
    Row("before optimization");
    optimizeModule(*M);
    Row("after CP+CSE+DCE");
    return 0;
  }

  return usage();
}
