//===- examples/serve_demo.cpp - publish -> fetch -> run ------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The distribution layer in one sitting: a producer compiles and
/// PUBLISHes a module to a CodeServer over the framed protocol; a
/// consumer, holding nothing but the content digest, FETCHes the exact
/// bytes, fused-decodes (decode success == verified), and runs them.
/// A second load shows the server's verified-module cache serving warm
/// (zero additional decodes), and a tampered publish shows the server
/// refusing unverifiable bytes.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "serve/CodeClient.h"
#include "serve/CodeServer.h"

#include <cstdio>
#include <thread>

using namespace safetsa;

static const char *Source =
    "class Greeter {\n"
    "  int times;\n"
    "  void greet() {\n"
    "    for (int i = 0; i < this.times; i++) { IO.printInt(i); }\n"
    "    IO.println();\n"
    "  }\n"
    "}\n"
    "class Main {\n"
    "  static void main() {\n"
    "    Greeter g = new Greeter();\n"
    "    g.times = 5;\n"
    "    g.greet();\n"
    "  }\n"
    "}\n";

int main() {
  CodeServer Server;
  TransportPair Pair = makePipePair();
  std::thread ServerThread(
      [&] { Server.serveConnection(*Pair.Server); });
  CodeClient Client(*Pair.Client);

  // Producer: compile, encode, PUBLISH. The returned digest is the
  // module's name everywhere — it is the hash of the exact bytes.
  auto P = compileMJ("greeter.mj", Source);
  if (!P->ok()) {
    std::fprintf(stderr, "%s", P->renderDiagnostics().c_str());
    return 1;
  }
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  Digest D;
  std::string Err;
  if (!Client.publish(ByteSpan(Wire), D, &Err)) {
    std::fprintf(stderr, "publish failed: %s\n", Err.c_str());
    return 1;
  }
  std::printf("published %zu bytes as %s\n", Wire.size(), D.hex().c_str());

  // Consumer: FETCH by digest, fused decode+verify, run. No trust in
  // the channel is needed — substituted or tampered bytes would fail
  // the digest check or the fused decode.
  auto Unit = Client.fetchAndLoad(D, &Err);
  if (!Unit) {
    std::fprintf(stderr, "fetch failed: %s\n", Err.c_str());
    return 1;
  }
  Runtime RT(*Unit->Table);
  TSAInterpreter Interp(*Unit->Module, RT);
  ExecResult R = Interp.runMain();
  std::printf("fetched module ran (%s), output: %s\n",
              runtimeErrorName(R.Err), RT.getOutput().c_str());

  // Warm cache: the server decoded this digest exactly once (at
  // publish); in-process loads now serve the cached verified module.
  std::string LoadErr;
  Server.load(D, &LoadErr);
  Server.load(D, &LoadErr);
  ServeStats Stats;
  Client.stats(Stats, &Err);
  std::printf("server decodes for this digest: %llu (hits: %llu)\n",
              static_cast<unsigned long long>(Stats.CacheDecodes),
              static_cast<unsigned long long>(Stats.CacheHits));

  // Tampered bytes: refused at PUBLISH, never stored.
  std::vector<uint8_t> Tampered = Wire;
  Tampered[Tampered.size() / 2] ^= 0x20;
  Digest TD;
  if (!Client.publish(ByteSpan(Tampered), TD, &Err))
    std::printf("tampered publish refused: %s\n", Err.c_str());
  else
    std::printf("tampered bytes decoded fine (rare, but legal): %s\n",
                TD.hex().c_str());

  Client.close();
  ServerThread.join();
  return R.Err == RuntimeError::None ? 0 : 1;
}
