//===- examples/mobile_code.cpp - Producer/consumer round trip -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mobile-code scenario the paper is about: a producer compiles,
/// optimizes, and encodes a program; the bytes travel over a hostile
/// network; the consumer decodes into its *own* implicitly-generated type
/// table, verifies, and runs. The demo then plays the adversary: it flips
/// every single bit of the wire image in turn and shows that no corruption
/// survives decode+verify into an unsafe module, and that the intact
/// image round-trips to identical behaviour.
///
/// Build & run:  ./build/examples/mobile_code
///
//===----------------------------------------------------------------------===//

#include "codec/Codec.h"
#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "opt/Optimizer.h"
#include "tsa/Verifier.h"

#include <cstdio>

using namespace safetsa;

static const char *Source = R"MJ(
  class Account {
    int balance;

    Account(int opening) { balance = opening; }

    void deposit(int amount) {
      if (amount > 0) balance = balance + amount;
    }

    boolean withdraw(int amount) {
      if (amount <= 0 || amount > balance) return false;
      balance = balance - amount;
      return true;
    }
  }

  class Main {
    static void main() {
      Account a = new Account(100);
      a.deposit(50);
      IO.printBool(a.withdraw(120));
      IO.println();
      IO.printBool(a.withdraw(120));
      IO.println();
      IO.printInt(a.balance);
      IO.println();
    }
  }
)MJ";

static std::string runUnit(const DecodedUnit &Unit) {
  Runtime RT(*Unit.Table);
  TSAInterpreter Interp(*Unit.Module, RT);
  ExecResult R = Interp.runMain();
  if (!R.ok())
    return std::string("<runtime error: ") + runtimeErrorName(R.Err) + ">";
  return RT.getOutput();
}

int main() {
  // Producer side.
  auto P = compileMJ("account.mj", Source);
  if (!P->ok()) {
    std::fprintf(stderr, "%s", P->renderDiagnostics().c_str());
    return 1;
  }
  OptStats Stats = optimizeModule(*P->TSA);
  std::vector<uint8_t> Wire = encodeModule(*P->TSA);
  std::printf("producer: optimized (%u values CSEd, %u dead removed), "
              "encoded to %zu bytes\n",
              Stats.CSERemoved, Stats.DCERemoved, Wire.size());

  // Consumer side: fresh type context and class table; the builtins are
  // generated locally and cannot be influenced by the wire bytes.
  std::string Err;
  std::unique_ptr<DecodedUnit> Unit = decodeModule(Wire, &Err);
  if (!Unit) {
    std::fprintf(stderr, "decode failed: %s\n", Err.c_str());
    return 1;
  }
  TSAVerifier V(*Unit->Module);
  if (!V.verify()) {
    std::fprintf(stderr, "verification failed\n");
    return 1;
  }
  std::string Expected = runUnit(*Unit);
  std::printf("consumer: decoded, verified, ran:\n%s", Expected.c_str());

  // Adversary: flip every bit of the wire image, one at a time. Each
  // corrupted image must either fail to decode, fail to verify, or decode
  // to a (different but) still-safe module. It must never produce a
  // module that violates the memory-safety discipline.
  unsigned RejectedAtDecode = 0, RejectedAtVerify = 0, StillSafe = 0;
  for (size_t Bit = 0; Bit < Wire.size() * 8; ++Bit) {
    std::vector<uint8_t> Evil = Wire;
    Evil[Bit / 8] ^= static_cast<uint8_t>(1u << (Bit % 8));
    std::string DecodeErr;
    auto EvilUnit = decodeModule(Evil, &DecodeErr);
    if (!EvilUnit) {
      ++RejectedAtDecode;
      continue;
    }
    TSAVerifier EvilV(*EvilUnit->Module);
    if (!EvilV.verify()) {
      ++RejectedAtVerify;
      continue;
    }
    // Survived: it decodes to a well-formed, type-separated module — a
    // different program perhaps, but one that cannot break the host.
    ++StillSafe;
  }
  std::printf("\nadversary: flipped each of %zu bits once\n",
              Wire.size() * 8);
  std::printf("  rejected by the decoder      : %u\n", RejectedAtDecode);
  std::printf("  rejected by the verifier     : %u\n", RejectedAtVerify);
  std::printf("  decoded to a still-safe module: %u\n", StillSafe);
  std::printf("  escaped the safety net       : 0 (by construction)\n");
  return 0;
}
