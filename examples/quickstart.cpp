//===- examples/quickstart.cpp - Hello, SafeTSA ---------------*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five-minute tour of the public API: compile an MJ program to
/// SafeTSA, look at the type-separated (l-r) form, verify it, and run it.
///
/// Build & run:  ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "exec/TSAInterp.h"
#include "tsa/Printer.h"
#include "tsa/Verifier.h"

#include <cstdio>

using namespace safetsa;

int main() {
  // 1. An MJ program (the Java-subset source language of this repo).
  const char *Source = R"MJ(
    class Greeter {
      int times;

      Greeter(int n) { times = n; }

      void greet(char[] message) {
        for (int i = 0; i < times; i++) {
          IO.printStr(message);
          IO.printChar(' ');
          IO.printInt(i * i + 1);
          IO.println();
        }
      }
    }

    class Main {
      static void main() {
        Greeter g = new Greeter(3);
        g.greet("hello, SafeTSA");
      }
    }
  )MJ";

  // 2. Run the producer pipeline: lex, parse, type-check, generate the
  //    type-separated referentially-secure SSA form.
  std::unique_ptr<CompiledProgram> P = compileMJ("quickstart.mj", Source);
  if (!P->ok()) {
    std::fprintf(stderr, "%s", P->renderDiagnostics().c_str());
    return 1;
  }

  // 3. Inspect the SafeTSA form of one method, in the paper's notation:
  //    each value lands on the next register of its type plane; operands
  //    are (l-r) pairs — l dominator-tree levels up, register r.
  std::printf("=== SafeTSA form of Greeter.greet ===\n");
  PlaneContext Ctx{P->Types, *P->Table};
  for (const auto &M : P->TSA->Methods)
    if (M->Symbol->Name == "greet")
      std::printf("%s\n", printMethod(*M, Ctx).c_str());

  // 4. Verify — the cheap consumer-side check.
  TSAVerifier V(*P->TSA);
  if (!V.verify()) {
    for (const std::string &E : V.getErrors())
      std::fprintf(stderr, "verify: %s\n", E.c_str());
    return 1;
  }
  std::printf("=== module verifies ===\n\n");

  // 5. Execute.
  Runtime RT(*P->Table);
  TSAInterpreter Interp(*P->TSA, RT);
  ExecResult R = Interp.runMain();
  if (!R.ok()) {
    std::fprintf(stderr, "runtime error: %s\n", runtimeErrorName(R.Err));
    return 1;
  }
  std::printf("=== program output ===\n%s", RT.getOutput().c_str());
  return 0;
}
