//===- examples/optimizer_tour.cpp - Producer-side optimization -*- C++ -*-===//
//
// Part of the SafeTSA reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shows what the paper's §8 pipeline does to one method: the SafeTSA
/// form before and after, plus per-pass statistics. The star of the show
/// is check elimination: dominating nullcheck/indexcheck values are
/// reused by CSE, so the transmitted program carries provably fewer
/// dynamic checks — and the consumer need not trust the producer, because
/// a missing-but-needed check is inexpressible.
///
/// Build & run:  ./build/examples/optimizer_tour
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "opt/Optimizer.h"
#include "tsa/Printer.h"
#include "tsa/Verifier.h"

#include <cstdio>

using namespace safetsa;

int main() {
  // A method with obvious redundancy: repeated field loads, repeated
  // array accesses (each with its null- and index-check), a constant
  // subexpression, and a loop with superfluous phis.
  const char *Source = R"MJ(
    class Stats {
      int[] data;
      int scale;

      Stats(int n) {
        data = new int[n];
        scale = 3 * 7 + 21;
      }

      int weighted(int i) {
        // data is null-checked three times and data[i] twice before
        // optimization; afterwards each check happens once.
        return data[i] * scale + data[i] * (scale - 10) + data.length;
      }

      int total() {
        int sum = 0;
        int unchanged = scale;
        for (int i = 0; i < data.length; i++) {
          sum = sum + weighted(i);
        }
        return sum + unchanged;
      }
    }

    class Main {
      static void main() {
        Stats s = new Stats(8);
        for (int i = 0; i < s.data.length; i++) s.data[i] = i + 1;
        IO.printInt(s.total());
        IO.println();
      }
    }
  )MJ";

  auto P = compileMJ("stats.mj", Source);
  if (!P->ok()) {
    std::fprintf(stderr, "%s", P->renderDiagnostics().c_str());
    return 1;
  }
  PlaneContext Ctx{P->Types, *P->Table};

  auto Show = [&](const char *Title) {
    std::printf("=== %s ===\n", Title);
    for (const auto &M : P->TSA->Methods)
      if (M->Symbol->Name == "weighted")
        std::printf("%s\n", printMethod(*M, Ctx).c_str());
    std::printf("module: %u instructions, %u phis, %u nullchecks, %u "
                "indexchecks\n\n",
                P->TSA->countInstructions(),
                P->TSA->countOpcode(Opcode::Phi),
                P->TSA->countOpcode(Opcode::NullCheck),
                P->TSA->countOpcode(Opcode::IndexCheck));
  };

  Show("before optimization");

  OptStats S = optimizeModule(*P->TSA);
  Show("after CP + CSE(Mem) + DCE");

  std::printf("=== pass statistics ===\n");
  std::printf("constants folded            : %u\n", S.FoldedConstants);
  std::printf("values unified by CSE       : %u\n", S.CSERemoved);
  std::printf("  of which null checks      : %u\n", S.CSERemovedNullChecks);
  std::printf("  of which index checks     : %u\n",
              S.CSERemovedIndexChecks);
  std::printf("dead instructions removed   : %u\n", S.DCERemoved);
  std::printf("  of which phis             : %u\n", S.DCERemovedPhis);

  TSAVerifier V(*P->TSA);
  std::printf("\noptimized module verifies   : %s\n",
              V.verify() ? "yes" : "NO");
  return 0;
}
